package bench

import (
	"testing"

	"chameleondb/internal/ycsb"
)

// TestYCSBWireSmoke boots one cache-on server and drives workloads A and C
// over real loopback connections at tiny scale — the wire driver's e2e
// smoke, cheap enough to run under -race in CI on every push (the full
// ycsb experiment is minutes; this is seconds). It checks the mechanics
// the experiment's numbers stand on: the preloaded keyspace never
// produces a GET miss, both op classes record latencies, RMW legs pair
// up, and the cache actually serves hits under zipfian skew.
func TestYCSBWireSmoke(t *testing.T) {
	opt := Options{Keys: 5000, Ops: 8000, Threads: 4, ValueSize: 8, Seed: 1}.withDefaults()
	sv, err := startYCSBServer(opt, opt.Threads, "on", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.stop()

	for _, w := range []ycsb.Workload{ycsb.A, ycsb.C} {
		res, err := ycsb.RunWire(ycsb.WireConfig{
			Addr:      sv.addr,
			Workload:  w,
			Keys:      opt.Keys,
			Ops:       opt.Ops,
			Workers:   opt.Threads,
			Depth:     ycsbWireDepth,
			ValueSize: opt.ValueSize,
			Seed:      opt.Seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if res.Reads.Ops == 0 || res.Reads.P99us <= 0 {
			t.Fatalf("%s: no read latencies recorded: %+v", w, res.Reads)
		}
		if w == ycsb.A && res.Writes.Ops == 0 {
			t.Fatalf("A: no write latencies recorded: %+v", res.Writes)
		}
		if got := res.Reads.Ops + res.Writes.Ops; got < res.Ops {
			t.Fatalf("%s: %d latency samples for %d ops", w, got, res.Ops)
		}
	}
	if s := sv.cache.Stats(); s.Hits == 0 || s.Admits == 0 {
		t.Fatalf("cache served no hits over the wire: %+v", s)
	}
}
