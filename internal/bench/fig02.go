package bench

import (
	"fmt"

	"chameleondb/internal/bloom"
	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func init() {
	register("fig2", "Multi-level read latency by level on SATA SSD / NVMe SSD / Optane Pmem", runFig2)
}

// runFig2 reproduces Figure 2: a 7-level hash-based LSM (LSM-trie-like) with
// per-level bloom filters on three devices. Reading a key at level k costs
// the filter checks of levels 0..k plus one device read. The shape to
// reproduce: on SSDs the filter time is invisible next to the device read;
// on Optane it becomes a significant and growing fraction — the paper's
// Challenge 2.
func runFig2(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	const levels = 7
	const keysPerLevel = 64 * 1024

	devices := []device.Profile{device.SATASSD, device.NVMeSSD, device.OptanePmem}
	var reports []*Report
	for _, prof := range devices {
		dev := device.New(prof)
		c := simclock.New(0)

		// One bloom filter per level, sized like a real per-level filter set.
		filters := make([]*bloom.Filter, levels)
		for l := range filters {
			filters[l] = bloom.New(keysPerLevel)
			for i := 0; i < keysPerLevel; i++ {
				filters[l].Add(c, xhash.Uint64(uint64(l)<<32|uint64(i)))
			}
		}

		rep := &Report{
			ID:      "fig2",
			Title:   fmt.Sprintf("Per-level get latency on %s (ns)", prof.Name),
			Columns: []string{"level", "filter-check(ns)", "table-read(ns)", "total(ns)", "filter-fraction"},
		}
		const probes = 2000
		for l := 0; l < levels; l++ {
			filterNs := int64(0)
			readNs := int64(0)
			for p := 0; p < probes; p++ {
				key := xhash.Uint64(uint64(l)<<32 | uint64(p%keysPerLevel))
				t0 := c.Now()
				// Check levels 0..l-1 (misses) then level l (hit).
				for j := 0; j <= l; j++ {
					filters[j].Contains(c, key)
				}
				t1 := c.Now()
				dev.ReadRandom(c, int64(p)*4096, 4096)
				filterNs += t1 - t0
				readNs += c.Now() - t1
			}
			f := filterNs / probes
			r := readNs / probes
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("L%d", l),
				fmt.Sprintf("%d", f),
				fmt.Sprintf("%d", r),
				fmt.Sprintf("%d", f+r),
				fmt.Sprintf("%.1f%%", 100*float64(f)/float64(f+r)),
			})
		}
		reports = append(reports, rep)
	}
	reports[len(reports)-1].Notes = []string{
		"on Optane the filter fraction is large and grows with depth (Challenge 2);",
		"on the SSDs it is negligible — the classic LSM assumption",
	}
	return reports, nil
}
