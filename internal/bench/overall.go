package bench

import (
	"fmt"
	"math/rand"
	"runtime"

	"chameleondb/internal/histogram"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig10", "Put throughput vs thread count", runFig10)
	register("fig11tab2", "Put latency CDF and tail latencies", runFig11Tab2)
	register("fig12", "Get throughput vs thread count", runFig12)
	register("fig13tab3", "Get latency CDF and tail latencies", runFig13Tab3)
	register("tab4", "Overall comparison: throughput, DRAM footprint, restart time", runTab4)
	register("fig3", "Four-measure comparison (write amp, read latency, DRAM, recovery)", runFig3)
}

// loadMeasured loads the store while recording per-put latencies, returning
// the makespan.
func loadMeasured(s kvstore.Store, opt Options, threads int, hist *histogram.Histogram) (int64, error) {
	setConcurrency(s, threads)
	val := make([]byte, opt.ValueSize)
	per := opt.Keys / int64(threads)
	g, err := workers(s, threads, 0, func(w int, se kvstore.Session) stepper {
		gen := ycsb.NewGenerator(ycsb.Load, 0, w, threads, opt.Seed)
		n := per
		if w == threads-1 {
			n = opt.Keys - per*int64(threads-1)
		}
		c := se.Clock()
		return countingStepper(n, func(i int64) error {
			t0 := c.Now()
			if err := se.Put(gen.Next().Key, val); err != nil {
				return err
			}
			if hist != nil {
				hist.Record(c.Now() - t0)
			}
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	return g.Makespan(), nil
}

// getPhase runs `ops` uniform random gets over the loaded keyspace with the
// given thread count, starting all clocks at `start` (the load frontier), and
// returns the phase makespan.
func getPhase(s kvstore.Store, opt Options, threads int, ops int64, start int64, hist *histogram.Histogram) (int64, error) {
	setConcurrency(s, threads)
	per := ops / int64(threads)
	g, err := workers(s, threads, start, func(w int, se kvstore.Session) stepper {
		rng := rand.New(rand.NewSource(opt.Seed + int64(w)*7919))
		c := se.Clock()
		return countingStepper(per, func(i int64) error {
			key := ycsb.Key(rng.Int63n(opt.Keys))
			t0 := c.Now()
			if _, ok, err := se.Get(key); err != nil {
				return err
			} else if !ok {
				return fmt.Errorf("bench: loaded key %q missing", key)
			}
			if hist != nil {
				hist.Record(c.Now() - t0)
			}
			return nil
		})
	})
	if err != nil {
		return 0, err
	}
	return g.Makespan(), nil
}

func runFig10(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	threadCounts := sweep(opt.Threads)
	rep := &Report{
		ID:      "fig10",
		Title:   "Put throughput (Mops/s), rows = store",
		Columns: []string{"store"},
		Notes: []string{
			"expect: Dram-Hash highest; ChameleonDB ~ Pmem-LSM-PinK ~ Pmem-LSM-NF;",
			"Pmem-LSM-F 2-3x below NF (bloom construction); Pmem-Hash lowest (small writes)",
		},
	}
	for _, tc := range threadCounts {
		rep.Columns = append(rep.Columns, fmt.Sprintf("%dthr", tc))
	}
	for _, kind := range ComparisonSet {
		row := []string{kind.String()}
		for _, tc := range threadCounts {
			s, err := OpenStore(kind, opt)
			if err != nil {
				return nil, err
			}
			dur, err := loadMeasured(s, opt, tc, nil)
			if err != nil {
				return nil, fmt.Errorf("%s @%d threads: %w", kind, tc, err)
			}
			row = append(row, mops(opt.Keys, dur))
			s.Close()
			runtime.GC()
		}
		rep.Rows = append(rep.Rows, row)
	}
	return []*Report{rep}, nil
}

func sweep(max int) []int {
	var out []int
	for t := 1; t <= max; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

func runFig11Tab2(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	cdf := &Report{
		ID:      "fig11",
		Title:   fmt.Sprintf("Put latency CDF at %d threads (ns at fixed fractions)", opt.Threads),
		Columns: append([]string{"store"}, cdfColumns...),
	}
	tails := &Report{
		ID:      "tab2",
		Title:   "Tail put latency (ns)",
		Columns: []string{"store", "p50", "p99", "p99.9", "p99.99", "max"},
		Notes: []string{
			"expect: Pmem-Hash p50 ~12x ChameleonDB, tails 18-29x;",
			"Dram-Hash max dominated by rehash spikes",
		},
	}
	for _, kind := range ComparisonSet {
		s, err := OpenStore(kind, opt)
		if err != nil {
			return nil, err
		}
		var h histogram.Histogram
		if _, err := loadMeasured(s, opt, opt.Threads, &h); err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		cdf.Rows = append(cdf.Rows, append([]string{kind.String()}, cdfSummary(&h)...))
		t := h.Tails()
		tails.Rows = append(tails.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", t.P50), fmt.Sprintf("%d", t.P99),
			fmt.Sprintf("%d", t.P999), fmt.Sprintf("%d", t.P9999),
			fmt.Sprintf("%d", t.Max),
		})
		s.Close()
		runtime.GC()
	}
	return []*Report{cdf, tails}, nil
}

func runFig12(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	threadCounts := sweep(opt.Threads)
	rep := &Report{
		ID:      "fig12",
		Title:   "Get throughput (Mops/s), rows = store",
		Columns: []string{"store"},
		Notes: []string{
			"expect: Dram-Hash highest; then ChameleonDB (ABI bypass);",
			"Pmem-LSM-NF lowest (multi-level Pmem walk)",
		},
	}
	for _, tc := range threadCounts {
		rep.Columns = append(rep.Columns, fmt.Sprintf("%dthr", tc))
	}
	for _, kind := range ComparisonSet {
		s, err := OpenStore(kind, opt)
		if err != nil {
			return nil, err
		}
		loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		row := []string{kind.String()}
		frontier := loadDur
		for _, tc := range threadCounts {
			dur, err := getPhase(s, opt, tc, opt.Ops, frontier, nil)
			if err != nil {
				return nil, fmt.Errorf("%s gets @%d threads: %w", kind, tc, err)
			}
			frontier += dur
			row = append(row, mops(opt.Ops, dur))
		}
		rep.Rows = append(rep.Rows, row)
		s.Close()
		runtime.GC()
	}
	return []*Report{rep}, nil
}

func runFig13Tab3(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	cdf := &Report{
		ID:      "fig13",
		Title:   "Get latency CDF, 1 thread (ns at fixed fractions)",
		Columns: append([]string{"store"}, cdfColumns...),
		Notes: []string{
			"expect a two-stage ChameleonDB curve: ABI hits fast, last-level hits slower;",
			"ChameleonDB median below Pmem-Hash/Pmem-LSM-*; Dram-Hash lowest",
		},
	}
	tails := &Report{
		ID:      "tab3",
		Title:   "Tail get latency (ns)",
		Columns: []string{"store", "p50", "p99", "p99.9", "p99.99", "max"},
	}
	ops := opt.Ops / 4
	if ops < 10000 {
		ops = 10000
	}
	for _, kind := range ComparisonSet {
		s, err := OpenStore(kind, opt)
		if err != nil {
			return nil, err
		}
		loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		var h histogram.Histogram
		if _, err := getPhase(s, opt, 1, ops, loadDur, &h); err != nil {
			return nil, fmt.Errorf("%s gets: %w", kind, err)
		}
		cdf.Rows = append(cdf.Rows, append([]string{kind.String()}, cdfSummary(&h)...))
		t := h.Tails()
		tails.Rows = append(tails.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", t.P50), fmt.Sprintf("%d", t.P99),
			fmt.Sprintf("%d", t.P999), fmt.Sprintf("%d", t.P9999),
			fmt.Sprintf("%d", t.Max),
		})
		s.Close()
		runtime.GC()
	}
	return []*Report{cdf, tails}, nil
}

// overallRow captures one store's Table 4 measurements.
type overallRow struct {
	kind      StoreKind
	putMops   float64
	getMops   float64
	dramMB    float64
	restartMs float64
	writeAmp  float64
	medGetNs  int64
}

func measureOverall(opt Options, kind StoreKind) (overallRow, error) {
	row := overallRow{kind: kind}
	s, err := OpenStore(kind, opt)
	if err != nil {
		return row, err
	}
	defer s.Close()
	loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
	if err != nil {
		return row, fmt.Errorf("%s load: %w", kind, err)
	}
	row.putMops = mopsVal(opt.Keys, loadDur)
	// Write amplification over the load: media bytes per user byte.
	user := opt.Keys * int64(8+opt.ValueSize)
	row.writeAmp = float64(s.DeviceStats().MediaBytesWritten) / float64(user)

	var gh histogram.Histogram
	getDur, err := getPhase(s, opt, opt.Threads, opt.Ops, loadDur, &gh)
	if err != nil {
		return row, fmt.Errorf("%s gets: %w", kind, err)
	}
	row.getMops = mopsVal(opt.Ops, getDur)
	row.medGetNs = gh.Percentile(50)
	row.dramMB = float64(s.DRAMFootprint()) / (1 << 20)

	s.Crash()
	rc := simclock.New(0)
	if err := s.Recover(rc); err != nil {
		return row, fmt.Errorf("%s recover: %w", kind, err)
	}
	restart := rc.Now()
	if cs, ok := s.(interface{ RecoverTimes() (int64, int64) }); ok {
		restart, _ = cs.RecoverTimes() // ready time, excluding background ABI rebuild
	}
	row.restartMs = float64(restart) / 1e6
	runtime.GC()
	return row, nil
}

func runTab4(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "tab4",
		Title:   "Overall comparison",
		Columns: []string{"store", "put(Mops/s)", "get(Mops/s)", "DRAM(MB)", "restart(ms virtual)"},
		Notes: []string{
			"expect: only ChameleonDB avoids every 'bad' cell — Dram-Hash restarts slowest",
			"with the biggest DRAM; Pmem-Hash puts slowest; Pmem-LSM-* gets slow",
		},
	}
	for _, kind := range ComparisonSet {
		row, err := measureOverall(opt, kind)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			kind.String(),
			fmt.Sprintf("%.2f", row.putMops),
			fmt.Sprintf("%.2f", row.getMops),
			fmt.Sprintf("%.1f", row.dramMB),
			fmt.Sprintf("%.2f", row.restartMs),
		})
	}
	return []*Report{rep}, nil
}

func runFig3(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	// Figure 3 compares the four design archetypes.
	kinds := []StoreKind{Chameleon, PmemLSMNF, PmemHash, DramHash}
	labels := map[StoreKind]string{
		Chameleon: "ChameleonDB", PmemLSMNF: "Pmem-LSM", PmemHash: "Pmem-Hash", DramHash: "Dram-Hash",
	}
	rows := make([]overallRow, 0, len(kinds))
	for _, k := range kinds {
		r, err := measureOverall(opt, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	maxOf := func(f func(overallRow) float64) float64 {
		m := 0.0
		for _, r := range rows {
			if v := f(r); v > m {
				m = v
			}
		}
		if m == 0 {
			m = 1
		}
		return m
	}
	wa := maxOf(func(r overallRow) float64 { return r.writeAmp })
	lat := maxOf(func(r overallRow) float64 { return float64(r.medGetNs) })
	mem := maxOf(func(r overallRow) float64 { return r.dramMB })
	rec := maxOf(func(r overallRow) float64 { return r.restartMs })

	rep := &Report{
		ID:      "fig3",
		Title:   "Four measures normalized to the worst performer (smaller is better)",
		Columns: []string{"store", "write-amp", "read-latency", "DRAM", "recovery"},
		Notes: []string{
			"expect: every baseline has at least one ~1.0 (worst) column; ChameleonDB none",
		},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			labels[r.kind],
			fmt.Sprintf("%.2f", r.writeAmp/wa),
			fmt.Sprintf("%.2f", float64(r.medGetNs)/lat),
			fmt.Sprintf("%.2f", r.dramMB/mem),
			fmt.Sprintf("%.2f", r.restartMs/rec),
		})
	}
	return []*Report{rep}, nil
}
