package bench

import (
	"fmt"

	"chameleondb/internal/core"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/ycsb"
)

func init() {
	register("fig15", "Put throughput over time: Level-by-Level vs Direct vs Direct+Write-Intensive", runFig15)
	register("ablations", "Design-choice ablations: ABI, load-factor randomization, GPM dump budget", runAblations)
}

// runFig15 reproduces Figure 15: windowed put throughput while loading
// unique keys under the three maintenance strategies. Shape: Direct
// Compaction a few percent above Level-by-Level throughout; Write-Intensive
// Mode well above both (the paper reports +7% and +38% on average).
func runFig15(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	type mode struct {
		name string
		cfg  func(*core.Config)
	}
	modes := []mode{
		{"Level-by-Level", func(c *core.Config) { c.CompactionMode = core.LevelByLevel }},
		{"Direct", func(c *core.Config) { c.CompactionMode = core.DirectCompaction }},
		{"Direct+WIM", func(c *core.Config) {
			c.CompactionMode = core.DirectCompaction
			c.WriteIntensive = true
		}},
	}
	const windows = 10
	rep := &Report{
		ID:      "fig15",
		Title:   "Put throughput (Mops/s) per progress window (10% of keys each)",
		Columns: []string{"mode"},
		Notes: []string{
			"paper: Direct ~7% over Level-by-Level; +WIM a further ~38% on average",
		},
	}
	for i := 0; i < windows; i++ {
		rep.Columns = append(rep.Columns, fmt.Sprintf("w%d", i+1))
	}
	rep.Columns = append(rep.Columns, "avg")

	for _, m := range modes {
		cfg := chameleonConfig(opt.Keys, opt.ValueSize)
		m.cfg(&cfg)
		s, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		marks, err := windowedLoad(s, opt, windows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.name, err)
		}
		row := []string{m.name}
		perWindow := opt.Keys / int64(windows)
		prev := int64(0)
		for _, mark := range marks {
			row = append(row, mops(perWindow, mark-prev))
			prev = mark
		}
		row = append(row, mops(opt.Keys, marks[len(marks)-1]))
		rep.Rows = append(rep.Rows, row)
		s.Close()
	}
	return []*Report{rep}, nil
}

// windowedLoad loads keys and returns the virtual time at each of `windows`
// equal progress marks.
func windowedLoad(s kvstore.Store, opt Options, windows int) ([]int64, error) {
	setConcurrency(s, opt.Threads)
	val := make([]byte, opt.ValueSize)
	per := opt.Keys / int64(opt.Threads)
	marks := make([]int64, 0, windows)
	markEvery := opt.Keys / int64(windows)
	var done int64
	var maxNow int64
	g, err := workers(s, opt.Threads, 0, func(w int, se kvstore.Session) stepper {
		gen := ycsb.NewGenerator(ycsb.Load, 0, w, opt.Threads, opt.Seed)
		c := se.Clock()
		return countingStepper(per, func(i int64) error {
			if err := se.Put(gen.Next().Key, val); err != nil {
				return err
			}
			if c.Now() > maxNow {
				maxNow = c.Now()
			}
			done++
			if done%markEvery == 0 && len(marks) < windows {
				marks = append(marks, maxNow)
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	for len(marks) < windows {
		marks = append(marks, g.Makespan())
	}
	marks[windows-1] = g.Makespan()
	return marks, nil
}

// runAblations quantifies the design choices DESIGN.md calls out, beyond the
// paper's own Figure 15 ablation.
func runAblations(opt Options) ([]*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{
		ID:      "ablations",
		Title:   "ChameleonDB design ablations",
		Columns: []string{"variant", "put(Mops/s)", "get(Mops/s)"},
		Notes: []string{
			"no-ABI degenerates reads to Pmem-LSM-NF behaviour;",
			"uniform load factors synchronize compaction bursts across shards",
		},
	}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"baseline", func(c *core.Config) {}},
		{"no-ABI", func(c *core.Config) { c.DisableABI = true }},
		{"uniform-load-factor", func(c *core.Config) { c.UniformLoadFactor = true }},
		{"level-by-level", func(c *core.Config) { c.CompactionMode = core.LevelByLevel }},
		{"write-intensive", func(c *core.Config) { c.WriteIntensive = true }},
	}
	for _, v := range variants {
		cfg := chameleonConfig(opt.Keys, opt.ValueSize)
		v.mut(&cfg)
		s, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		loadDur, err := loadMeasured(s, opt, opt.Threads, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		getDur, err := getPhase(s, opt, opt.Threads, opt.Ops, loadDur, nil)
		if err != nil {
			return nil, fmt.Errorf("%s gets: %w", v.name, err)
		}
		rep.Rows = append(rep.Rows, []string{
			v.name, mops(opt.Keys, loadDur), mops(opt.Ops, getDur),
		})
		s.Close()
	}
	return []*Report{rep}, nil
}
