// Replica-pair crash sweep: the failover extension of the crash-point sweep.
//
// A primary and a replica (internal/repl) run a deterministic scripted
// workload with WAIT(1) acknowledgment points. A count run measures how many
// device persist events each side issues; the sweep then replays the script
// killing the primary — or the replica — at every Nth persist via the device
// fault-injection layer, and checks the failover contract on the survivor:
//
//   - promoted survivor: every write acknowledged by a successful WAIT(1)
//     before the kill must be served (value or tombstone), and every value it
//     serves must be one the workload actually acknowledged — no phantoms;
//   - surviving primary (replica killed): the full applied state is served
//     exactly, writes keep working, and WAIT degrades to 0 instead of
//     wedging;
//   - the killed replica can never confirm durability the simulated device
//     has already discarded (Config.AckGate wired to the power-failure
//     latch).
//
// The replica's persist schedule depends on how the shipped stream happened
// to be framed, so its counts are not reproducible run to run; a replay whose
// plan never fires is treated as an end-of-script kill (still a legal check)
// rather than an error, like storetest.SweepConfig.AllowUntriggered.
package replsweep

import (
	"fmt"
	"math/rand"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/device"
	"chameleondb/internal/repl"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

// PairSweepConfig sizes the replica-pair sweep.
type PairSweepConfig struct {
	Seed        int64
	Ops         int // scripted puts/deletes
	Keys        int // key-space size
	MaxValueLen int
	WaitEvery   int           // a WAIT(1) acknowledgment point every this many ops
	WaitTimeout time.Duration // per-WAIT cap; a dead replica makes WAIT return 0 after this
	Stride      int           // test every Stride-th persist point (0 or 1 = exhaustive)

	// StoreConfig overrides the scaled-down default store geometry. Leave
	// zero for the default. MaintenanceWorkers is forced to 0 either way so
	// the primary's persist schedule stays deterministic.
	StoreConfig *core.Config

	Logf func(format string, args ...any)
}

func (c *PairSweepConfig) defaults() {
	if c.Ops == 0 {
		c.Ops = 400
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.MaxValueLen == 0 {
		c.MaxValueLen = 48
	}
	if c.WaitEvery == 0 {
		c.WaitEvery = 25
	}
	if c.WaitTimeout == 0 {
		c.WaitTimeout = 2 * time.Second
	}
	if c.Stride <= 0 {
		c.Stride = 1
	}
}

func (c *PairSweepConfig) storeConfig() core.Config {
	if c.StoreConfig != nil {
		scfg := *c.StoreConfig
		scfg.MaintenanceWorkers = 0
		return scfg
	}
	scfg := core.TestConfig()
	scfg.Shards = 4
	scfg.MemTableSlots = 32
	scfg.ArenaBytes = 4 << 20
	scfg.LogBytes = 1 << 20
	scfg.MaintenanceWorkers = 0
	return scfg
}

// PairSweepResult summarizes a completed pair sweep.
type PairSweepResult struct {
	PrimaryPersists int64 // persist events on the primary in one clean run
	ReplicaPersists int64 // persist events on the replica in one clean run
	Runs            int   // kill/failover cycles executed
	Untriggered     int   // replays that ended the script before the plan fired
}

func (r PairSweepResult) String() string {
	return fmt.Sprintf("primary %d / replica %d persist events, %d failover runs (%d end-of-script)",
		r.PrimaryPersists, r.ReplicaPersists, r.Runs, r.Untriggered)
}

// pairOp is one scripted step.
type pairOp struct {
	kind int // 0 put, 1 delete, 2 wait
	key  int
	val  []byte
}

const (
	pairPut = iota
	pairDelete
	pairWait
)

func buildPairScript(cfg PairSweepConfig) []pairOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var script []pairOp
	for i := 0; i < cfg.Ops; i++ {
		key := rng.Intn(cfg.Keys)
		if rng.Intn(10) < 8 {
			val := make([]byte, 1+rng.Intn(cfg.MaxValueLen))
			for j := range val {
				val[j] = byte('a' + (key+i+j)%26)
			}
			script = append(script, pairOp{kind: pairPut, key: key, val: val})
		} else {
			script = append(script, pairOp{kind: pairDelete, key: key})
		}
		if (i+1)%cfg.WaitEvery == 0 {
			script = append(script, pairOp{kind: pairWait})
		}
	}
	script = append(script, pairOp{kind: pairWait})
	return script
}

// pair is one live primary+replica topology.
type pair struct {
	pst, rst     *core.Store
	pnode, rnode *repl.Node
	pdev, rdev   *device.Device
}

// startPair opens both stores, installs the fault plans (counters when the
// sweep is only measuring), and connects the replica. Plans are installed
// before the nodes start so bootstrap traffic counts too. The replica's
// AckGate is wired to its device's power-failure latch: after the kill point
// it keeps applying into the doomed model but can no longer confirm
// durability — exactly a replica whose disk died under it.
func startPair(cfg PairSweepConfig, pplan, rplan *device.FaultPlan) (*pair, error) {
	scfg := cfg.storeConfig()
	pst, err := core.Open(scfg)
	if err != nil {
		return nil, err
	}
	p := &pair{pst: pst, pdev: pst.Device()}
	p.pdev.InstallFaultPlan(pplan)
	p.pnode, err = repl.Start(pst, repl.Config{
		Addr:        "127.0.0.1:0",
		Heartbeat:   2 * time.Millisecond,
		HoldTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		pst.Close()
		return nil, err
	}
	rst, err := core.Open(scfg)
	if err != nil {
		p.close()
		return nil, err
	}
	p.rst, p.rdev = rst, rst.Device()
	p.rdev.InstallFaultPlan(rplan)
	p.rnode, err = repl.Start(rst, repl.Config{
		PrimaryAddr:    p.pnode.Addr(),
		ID:             "pair-replica",
		Heartbeat:      2 * time.Millisecond,
		ReconnectDelay: 5 * time.Millisecond,
		AckGate:        func() bool { return !p.rdev.PowerFailed() },
	})
	if err != nil {
		p.close()
		return nil, err
	}
	return p, nil
}

// close tears the topology down, nodes before stores (a node owns goroutines
// that touch its store).
func (p *pair) close() {
	if p.rnode != nil {
		p.rnode.Close()
	}
	if p.pnode != nil {
		p.pnode.Close()
	}
	if p.rst != nil {
		p.rst.Close()
	}
	if p.pst != nil {
		p.pst.Close()
	}
}

// runPairScript drives the script on the primary, promoting the oracle's
// durable view at every WAIT(1) that succeeded before the victim's plan
// fired. It stops at the first op that observes the trigger, recording the
// in-flight write as ambiguous.
func runPairScript(p *pair, vplan *device.FaultPlan, script []pairOp, cfg PairSweepConfig) (*storetest.RunState, error) {
	se := p.pst.NewSession(simclock.New(0))
	defer releasePairSession(se)
	rs := storetest.NewRunState()
	for n, op := range script {
		if vplan.Triggered() {
			return rs, nil
		}
		switch op.kind {
		case pairWait:
			got, err := p.pnode.Wait(se, 1, cfg.WaitTimeout)
			if vplan.Triggered() {
				return rs, nil
			}
			if err != nil {
				return rs, fmt.Errorf("op %d: WAIT: %w", n, err)
			}
			if got >= 1 {
				rs.Promote()
			}
		case pairPut:
			err := se.Put(storetest.SweepKey(op.key), op.val)
			if vplan.Triggered() {
				rs.AddPending(op.key, string(op.val), false)
				return rs, nil
			}
			if err != nil {
				return rs, fmt.Errorf("op %d: put: %w", n, err)
			}
			rs.Ack(op.key, string(op.val), false)
		case pairDelete:
			err := se.Delete(storetest.SweepKey(op.key))
			if vplan.Triggered() {
				rs.AddPending(op.key, "", true)
				return rs, nil
			}
			if err != nil {
				return rs, fmt.Errorf("op %d: delete: %w", n, err)
			}
			rs.Ack(op.key, "", true)
		}
	}
	return rs, nil
}

func releasePairSession(se interface{ Flush() error }) {
	if r, ok := se.(interface{ Release() error }); ok {
		r.Release()
	}
}

// checkSurvivor verifies the surviving store against the oracle. exact
// demands the full applied state (a surviving primary lost nothing);
// otherwise the WAIT-acked legality check applies (a promoted replica).
func checkSurvivor(st *core.Store, rs *storetest.RunState, keys int, exact bool) error {
	se := st.NewSession(simclock.New(0))
	defer releasePairSession(se)
	for key := 0; key < keys; key++ {
		got, ok, err := se.Get(storetest.SweepKey(key))
		if err != nil {
			return fmt.Errorf("survivor get key %d: %w", key, err)
		}
		if exact {
			want, wantOK := rs.AppliedVal(key)
			if ok != wantOK || (ok && string(got) != want) {
				return fmt.Errorf("surviving primary key %d = %q,%v want %q,%v",
					key, storetest.Trunc(got), ok, storetest.Trunc([]byte(want)), wantOK)
			}
			continue
		}
		if legal, why := rs.Legal(key, got, ok); !legal {
			return fmt.Errorf("promoted survivor key %d: %s", key, why)
		}
	}
	// The survivor must keep taking writes durably.
	if err := se.Put([]byte("pair-probe"), []byte("alive")); err != nil {
		return fmt.Errorf("survivor probe put: %w", err)
	}
	if err := se.Flush(); err != nil {
		return fmt.Errorf("survivor probe flush: %w", err)
	}
	return nil
}

// runPairPoint replays the script killing the victim ("primary" or
// "replica") at persist event `point`, then runs the survivor checks. It
// reports whether the plan actually fired.
func runPairPoint(cfg PairSweepConfig, script []pairOp, point int64, victim string) (bool, error) {
	pplan, rplan := &device.FaultPlan{}, &device.FaultPlan{}
	vplan := pplan
	if victim == "replica" {
		vplan = rplan
	}
	vplan.CrashAtPersist = point
	p, err := startPair(cfg, pplan, rplan)
	if err != nil {
		return false, err
	}
	defer p.close()

	rs, err := runPairScript(p, vplan, script, cfg)
	if err != nil {
		return vplan.Triggered(), fmt.Errorf("%s kill at persist %d: %w", victim, point, err)
	}
	triggered := vplan.Triggered()

	if victim == "primary" {
		// Fail the primary over: stop its node (the dead store must not keep
		// shipping), promote the replica, and check the WAIT-acked contract.
		p.pnode.Close()
		p.pnode = nil
		if err := p.rnode.Promote(); err != nil {
			return triggered, fmt.Errorf("primary kill at persist %d: promote: %w", point, err)
		}
		if err := checkSurvivor(p.rst, rs, cfg.Keys, false); err != nil {
			return triggered, fmt.Errorf("primary kill at persist %d: %w", point, err)
		}
		return triggered, nil
	}

	// Replica killed: tear its node down, then the primary must serve the
	// exact applied state, keep accepting writes, and report 0 from WAIT
	// instead of wedging on the corpse.
	p.rnode.Close()
	p.rnode = nil
	if err := checkSurvivor(p.pst, rs, cfg.Keys, true); err != nil {
		return triggered, fmt.Errorf("replica kill at persist %d: %w", point, err)
	}
	se := p.pst.NewSession(simclock.New(0))
	got, err := p.pnode.Wait(se, 1, 50*time.Millisecond)
	releasePairSession(se)
	if err != nil {
		return triggered, fmt.Errorf("replica kill at persist %d: post-kill WAIT: %w", point, err)
	}
	if got != 0 {
		return triggered, fmt.Errorf("replica kill at persist %d: WAIT counted %d dead replicas", point, got)
	}
	return triggered, nil
}

// PairCrashSweep runs the replica-pair kill sweep: a clean count run, then a
// kill of the primary at every Stride-th primary persist and of the replica
// at every Stride-th replica persist.
func PairCrashSweep(cfg PairSweepConfig) (PairSweepResult, error) {
	cfg.defaults()
	script := buildPairScript(cfg)
	var res PairSweepResult

	// Count run: counter plans on both devices, script to completion, replica
	// parity checked exactly after the final WAIT.
	pplan, rplan := &device.FaultPlan{}, &device.FaultPlan{}
	p, err := startPair(cfg, pplan, rplan)
	if err != nil {
		return res, err
	}
	rs, err := runPairScript(p, pplan, script, cfg)
	if err == nil {
		err = checkSurvivor(p.pst, rs, cfg.Keys, true)
	}
	if err == nil {
		// The final scripted WAIT confirmed replica durability of everything
		// before it; the probe write above is not shipped-acked, so check the
		// replica against the oracle's durable view, not applied.
		rse := p.rst.NewSession(simclock.New(0))
		for key := 0; key < cfg.Keys; key++ {
			got, ok, gerr := rse.Get(storetest.SweepKey(key))
			if gerr != nil {
				err = fmt.Errorf("count run: replica get key %d: %w", key, gerr)
				break
			}
			if legal, why := rs.Legal(key, got, ok); !legal {
				err = fmt.Errorf("count run: replica key %d: %s", key, why)
				break
			}
		}
		releasePairSession(rse)
	}
	p.close()
	if err != nil {
		return res, fmt.Errorf("count run: %w", err)
	}
	res.PrimaryPersists, res.ReplicaPersists = pplan.Persists(), rplan.Persists()
	if res.PrimaryPersists == 0 {
		return res, fmt.Errorf("count run issued no primary persist events")
	}

	for point := int64(1); point <= res.PrimaryPersists; point += int64(cfg.Stride) {
		triggered, err := runPairPoint(cfg, script, point, "primary")
		if err != nil {
			return res, err
		}
		res.Runs++
		if !triggered {
			res.Untriggered++
		}
		storetest.Logf(cfg.Logf, "pair sweep: primary kill %d/%d ok (fired=%v)", point, res.PrimaryPersists, triggered)
	}
	for point := int64(1); point <= res.ReplicaPersists; point += int64(cfg.Stride) {
		triggered, err := runPairPoint(cfg, script, point, "replica")
		if err != nil {
			return res, err
		}
		res.Runs++
		if !triggered {
			res.Untriggered++
		}
		storetest.Logf(cfg.Logf, "pair sweep: replica kill %d/%d ok (fired=%v)", point, res.ReplicaPersists, triggered)
	}
	return res, nil
}
