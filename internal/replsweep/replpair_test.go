package replsweep

import (
	"testing"
	"time"
)

// TestPairCrashSweep kills the primary and the replica at a stride of persist
// points and checks the failover contract each time. The full stride-1 sweep
// runs in CI's replication job via -pair-stride; here a coarser stride keeps
// the default test wall-clock short.
func TestPairCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("pair sweep is not short")
	}
	res, err := PairCrashSweep(PairSweepConfig{
		Seed:        7,
		Ops:         260,
		WaitEvery:   20,
		WaitTimeout: 1500 * time.Millisecond,
		Stride:      3,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("sweep tested no kill points")
	}
	t.Log(res)
}
