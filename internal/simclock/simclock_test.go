package simclock

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := New(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	if got := c.Advance(50); got != 150 {
		t.Fatalf("Advance(50) = %d, want 150", got)
	}
	if got := c.Advance(-10); got != 150 {
		t.Fatalf("Advance(-10) = %d, want 150 (negative ignored)", got)
	}
	c.AdvanceTo(120)
	if got := c.Now(); got != 150 {
		t.Fatalf("AdvanceTo(past) moved clock backwards to %d", got)
	}
	c.AdvanceTo(200)
	if got := c.Now(); got != 200 {
		t.Fatalf("AdvanceTo(200) = %d", got)
	}
}

func TestTimelineSerializes(t *testing.T) {
	var tl Timeline
	end1 := tl.Reserve(0, 100)
	if end1 != 100 {
		t.Fatalf("first reservation end = %d, want 100", end1)
	}
	// A request arriving at t=50 must queue behind the first reservation.
	end2 := tl.Reserve(50, 30)
	if end2 != 130 {
		t.Fatalf("queued reservation end = %d, want 130", end2)
	}
	// A request arriving after the line is idle starts immediately.
	end3 := tl.Reserve(500, 10)
	if end3 != 510 {
		t.Fatalf("idle reservation end = %d, want 510", end3)
	}
	if tl.Peek() != 510 {
		t.Fatalf("Peek() = %d, want 510", tl.Peek())
	}
}

func TestTimelineNegativeDuration(t *testing.T) {
	var tl Timeline
	end := tl.Reserve(10, -5)
	if end != 10 {
		t.Fatalf("negative duration reservation end = %d, want 10", end)
	}
}

// Property: the total reserved time on a timeline equals the sum of
// durations, regardless of arrival order or concurrency — a timeline is a
// work-conserving serial resource once it is saturated.
func TestTimelineConservesWorkUnderConcurrency(t *testing.T) {
	var tl Timeline
	const workers = 8
	const perWorker = 1000
	const dur = 7
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tl.Reserve(0, dur) // all arrive at t=0: fully saturated
			}
		}()
	}
	wg.Wait()
	want := int64(workers * perWorker * dur)
	if got := tl.Peek(); got != want {
		t.Fatalf("saturated timeline end = %d, want %d", got, want)
	}
}

// Property: reservations never complete before their arrival plus duration.
func TestTimelineNeverEarly(t *testing.T) {
	f := func(arrivals []uint16, durs []uint16) bool {
		var tl Timeline
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			at, d := int64(arrivals[i]), int64(durs[i])
			if end := tl.Reserve(at, d); end < at+d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupMakespanAndSync(t *testing.T) {
	g := NewGroup(3, 1000)
	if g.Len() != 3 {
		t.Fatalf("Len() = %d", g.Len())
	}
	g.Clock(0).Advance(10)
	g.Clock(1).Advance(500)
	g.Clock(2).Advance(200)
	if ms := g.Makespan(); ms != 500 {
		t.Fatalf("Makespan() = %d, want 500", ms)
	}
	barrier := g.Sync()
	if barrier != 1500 {
		t.Fatalf("Sync() = %d, want 1500", barrier)
	}
	for i := 0; i < 3; i++ {
		if g.Clock(i).Now() != 1500 {
			t.Fatalf("clock %d = %d after Sync, want 1500", i, g.Clock(i).Now())
		}
	}
}

func TestGroupEmptyMakespan(t *testing.T) {
	g := NewGroup(0, 50)
	if ms := g.Makespan(); ms != 0 {
		t.Fatalf("empty group Makespan() = %d, want 0", ms)
	}
}

// Property: ReserveWork never completes before at+dur, accumulates exactly
// the total work, and never lets a future-time reservation block an earlier
// arrival beyond the accumulated work.
func TestReserveWorkProperties(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		var tl Timeline
		n := len(arrivals)
		if len(durs) < n {
			n = len(durs)
		}
		var totalWork int64
		for i := 0; i < n; i++ {
			at, d := int64(arrivals[i]), int64(durs[i])
			end := tl.ReserveWork(at, d)
			if end < at+d {
				return false // completed early
			}
			totalWork += d
			if end > at+totalWork {
				return false // waited longer than all work ever submitted
			}
		}
		return tl.Peek() == totalWork
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReserveWorkIdleGap(t *testing.T) {
	var tl Timeline
	// A reservation far in the future must not block an earlier arrival.
	if end := tl.ReserveWork(1_000_000, 10); end != 1_000_010 {
		t.Fatalf("future reservation end = %d", end)
	}
	// An arrival at t=0 sees only the 10ns of accumulated work, not the
	// future timestamp.
	if end := tl.ReserveWork(0, 5); end != 15 {
		t.Fatalf("early arrival end = %d, want 15 (queue behind 10ns of work)", end)
	}
}

func TestReserveWorkBacklog(t *testing.T) {
	var tl Timeline
	// Saturation: arrivals at time 0 serialize.
	var end int64
	for i := 0; i < 100; i++ {
		end = tl.ReserveWork(0, 7)
	}
	if end != 700 {
		t.Fatalf("backlogged completion = %d, want 700", end)
	}
}
