// Package simclock provides deterministic virtual time for the simulated
// storage devices in this repository.
//
// Real Optane persistent memory operates at nanosecond latencies that cannot
// be reproduced with wall-clock sleeps, and the machine running this
// reproduction has no Optane hardware at all. Instead, every worker
// (foreground request thread or background compaction thread) owns a Clock
// that accumulates virtual nanoseconds, and every shared resource (a device's
// media pipe, a shard's critical section) is a Timeline on which work
// reserves time. Throughput and latency experiments are computed from these
// virtual clocks, which makes results deterministic in shape and independent
// of host speed.
package simclock

import "sync/atomic"

// Clock is a per-worker virtual clock measured in nanoseconds.
// A Clock is owned by a single goroutine and is not safe for concurrent use.
type Clock struct {
	now int64
}

// New returns a Clock starting at the given virtual time.
func New(start int64) *Clock { return &Clock{now: start} }

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds and returns the new time.
// Negative d is ignored.
func (c *Clock) Advance(d int64) int64 {
	if d > 0 {
		c.now += d
	}
	return c.now
}

// AdvanceTo moves the clock forward to time t. If t is in the clock's past,
// the clock is unchanged: virtual time never runs backwards.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Timeline models a shared serial resource: a device's media pipe or a
// shard's critical section. Work reserves a duration on the timeline; if the
// resource is busy at the requested start time, the reservation is pushed
// back, which is exactly the queueing delay a real thread would observe.
// Timeline is safe for concurrent use.
type Timeline struct {
	busy atomic.Int64
	// shared is the completion frontier of shared (reader) reservations.
	// Shared reservations overlap each other and never queue behind busy;
	// the frontier exists so quiescence points can observe the latest
	// reader completion time.
	shared atomic.Int64
}

// Reserve books dur nanoseconds on the timeline no earlier than virtual time
// at, and returns the completion time. Reservations are serialized: a
// reservation starts at max(at, end of previous reservation).
func (t *Timeline) Reserve(at, dur int64) (end int64) {
	if dur < 0 {
		dur = 0
	}
	for {
		b := t.busy.Load()
		start := at
		if b > start {
			start = b
		}
		end = start + dur
		if t.busy.CompareAndSwap(b, end) {
			return end
		}
	}
}

// ReserveWork books dur nanoseconds of *work* on the timeline: if the work
// frontier is behind the arrival time (the resource has spare capacity), the
// request completes at at+dur and the frontier only accumulates the work; if
// the frontier is ahead (backlog), the request queues behind it. Unlike
// Reserve, an arrival in the idle future never drags the frontier forward
// over the gap, so a long-running operation that touches the resource at a
// late virtual time cannot block earlier arrivals from using the idle
// capacity in between. This is the right semantics for bandwidth-style
// resources (device pipes); Reserve remains the right semantics for strict
// critical sections.
func (t *Timeline) ReserveWork(at, dur int64) (end int64) {
	if dur < 0 {
		dur = 0
	}
	for {
		b := t.busy.Load()
		if !t.busy.CompareAndSwap(b, b+dur) {
			continue
		}
		if at >= b {
			return at + dur
		}
		return b + dur
	}
}

// ReserveShared books dur nanoseconds of shared (reader) work arriving at
// virtual time at. Shared reservations model lock-free readers on the
// resource: they overlap one another and do not queue behind the exclusive
// frontier, so the reservation always completes at at+dur regardless of
// concurrent writers. The timeline records only the latest shared completion
// time (SharedFrontier) so quiescence points — crash, GC, phase barriers —
// can tell when the last reader drained. This is the timeline-model half of
// ChameleonDB's lock-free get path: writers keep exclusive Reserve on the
// shard timeline, while concurrent gets overlap freely.
func (t *Timeline) ReserveShared(at, dur int64) (end int64) {
	if dur < 0 {
		dur = 0
	}
	end = at + dur
	for {
		s := t.shared.Load()
		if s >= end || t.shared.CompareAndSwap(s, end) {
			return end
		}
	}
}

// SharedFrontier returns the completion time of the latest shared
// reservation.
func (t *Timeline) SharedFrontier() int64 { return t.shared.Load() }

// Peek returns the time at which the timeline becomes free of exclusive
// reservations.
func (t *Timeline) Peek() int64 { return t.busy.Load() }

// Reset clears both frontiers back to time zero. Only safe when no
// reservations are in flight; used by the benchmark harness between
// experiments and by crash simulation.
func (t *Timeline) Reset() {
	t.busy.Store(0)
	t.shared.Store(0)
}

// Group tracks a set of worker clocks so the harness can compute the
// makespan (elapsed virtual wall time) of a parallel phase.
type Group struct {
	clocks []*Clock
	start  int64
}

// NewGroup creates a group of n fresh clocks all starting at time start.
func NewGroup(n int, start int64) *Group {
	g := &Group{clocks: make([]*Clock, n), start: start}
	for i := range g.clocks {
		g.clocks[i] = New(start)
	}
	return g
}

// Clock returns the i-th worker clock.
func (g *Group) Clock(i int) *Clock { return g.clocks[i] }

// Len returns the number of clocks in the group.
func (g *Group) Len() int { return len(g.clocks) }

// Makespan returns the elapsed virtual time of the phase: the maximum clock
// value minus the common start time.
func (g *Group) Makespan() int64 {
	var maxNow int64
	for _, c := range g.clocks {
		if c.now > maxNow {
			maxNow = c.now
		}
	}
	if maxNow < g.start {
		return 0
	}
	return maxNow - g.start
}

// Sync advances every clock in the group to the group's maximum time and
// returns it. Used between experiment phases so a new phase starts from a
// common barrier, as real threads would after a join.
func (g *Group) Sync() int64 {
	var maxNow int64
	for _, c := range g.clocks {
		if c.now > maxNow {
			maxNow = c.now
		}
	}
	for _, c := range g.clocks {
		c.AdvanceTo(maxNow)
	}
	return maxNow
}
