package hotcache_test

import (
	"testing"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
	"chameleondb/internal/storetest"
)

// sweepConfig mirrors the engine's own crash-sweep shrink (4 shards, 3
// levels, 2 MB arena) so crashing at every persist event stays fast.
func sweepConfig() core.Config {
	cfg := core.TestConfig()
	cfg.Shards = 4
	cfg.MemTableSlots = 32
	cfg.Levels = 3
	cfg.Ratio = 2
	cfg.ArenaBytes = 2 << 20
	cfg.LogBytes = 128 << 10
	return cfg
}

// TestCrashSweepWithCache runs the full crash-point conformance sweep with
// every read and write interposed by a hot-key cache small enough that the
// workload constantly admits, evicts, and invalidates. The sweep's oracle
// then proves the cache's crash contract: the cache is volatile (Crash drops
// it cold), so no post-recovery read may see pre-crash DRAM state, and no
// mid-script read may see a value older than its last acked write.
func TestCrashSweepWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is long; run without -short")
	}
	newStore := func() (kvstore.Store, error) {
		st, err := core.Open(sweepConfig())
		if err != nil {
			return nil, err
		}
		// A fresh cache per store instance, as a process restart would have;
		// 16 KiB against 96 keys × ≤120 B values keeps it under constant
		// eviction pressure.
		return hotcache.Wrap(st, hotcache.New(16<<10)), nil
	}
	res, err := storetest.CrashSweep(newStore, storetest.SweepConfig{
		Seed:          1,
		Ops:           1500,
		Keys:          96,
		MaxValueLen:   120,
		FlushEvery:    20,
		MaintainEvery: 50,
		Maintenance:   storetest.StandardMaintenance(),
		ScanEvery:     75,
		Tear:          true,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res)
}

// TestCrashStartsCold pins the volatility contract directly: a warm cache is
// emptied by Crash, and post-recovery reads are served by the engine (and
// re-admitted from it), never from pre-crash DRAM.
func TestCrashStartsCold(t *testing.T) {
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := hotcache.New(1 << 20)
	wst := hotcache.Wrap(st, cache)

	se := wst.NewSession(simclock.New(0))
	key, val := []byte("durable-key"), []byte("durable-val")
	if err := se.Put(key, val); err != nil {
		t.Fatal(err)
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	// Warm the cache.
	if _, ok, _ := se.Get(key); !ok {
		t.Fatal("warm read missed")
	}
	if cache.Stats().Entries == 0 {
		t.Fatal("read did not warm the cache")
	}
	releaseSession(se)

	wst.Crash()
	if s := cache.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("cache survived crash: %+v", s)
	}
	if err := wst.Recover(simclock.New(0)); err != nil {
		t.Fatal(err)
	}
	se2 := wst.NewSession(simclock.New(0))
	defer releaseSession(se2)
	misses := cache.Stats().Misses
	got, ok, err := se2.Get(key)
	if err != nil || !ok || string(got) != string(val) {
		t.Fatalf("post-recovery read: %q %v %v", got, ok, err)
	}
	if cache.Stats().Misses != misses+1 {
		t.Fatal("post-recovery read did not go to the engine (warm hit on a cold cache)")
	}
}
