package hotcache_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chameleondb/internal/core"
	"chameleondb/internal/hotcache"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// TestStressLinearizable races GET/SET/DEL (through the cache interposer)
// against eviction, miss-fills, and full invalidations, checking the cache's
// correctness contract: every read — hit or miss — must be indistinguishable
// from an engine read ordered at some point since the key's last acked local
// write. Run under -race this also shakes out data races in the shard
// locking and the version-gate protocol.
//
// Oracle: one writer per key issues strictly increasing sequence numbers.
// After each engine op returns (the "ack"), the writer publishes the key's
// state as seq<<1|present. A reader snapshots that state BEFORE its read:
//   - a read that returns a value must carry seq >= the snapshot's seq
//     (anything older predates an acked write: a stale hit);
//   - a read that returns not-found while the snapshot says present is legal
//     only if a delete newer than the snapshot was already in flight, which
//     the writer records in deleteIssued before calling the engine.
func TestStressLinearizable(t *testing.T) {
	st, err := core.Open(core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cache := hotcache.New(32 << 10) // tiny: forces admission/eviction churn
	wst := hotcache.Wrap(st, cache)

	const (
		numKeys      = 512 // ~8 keys per cache shard: real eviction pressure
		writers      = 8
		readers      = 8
		opsPerWriter = 3000
	)
	key := func(i int) []byte { return []byte(fmt.Sprintf("stress-%04d", i)) }
	val := func(seq uint64) []byte { return []byte(fmt.Sprintf("%016d", seq)) }

	var (
		acked        [numKeys]atomic.Uint64 // seq<<1 | present, post-ack
		deleteIssued [numKeys]atomic.Uint64 // max seq of a delete handed to the engine
		violation    atomic.Pointer[string]
	)
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		violation.CompareAndSwap(nil, &msg)
	}

	var wg, writerWG sync.WaitGroup
	writersDone := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			se := wst.NewSession(simclock.New(0))
			defer releaseSession(se)
			var seq uint64
			for op := 0; op < opsPerWriter; op++ {
				if op%32 == 31 {
					// On GOMAXPROCS=1 a writer otherwise burns through its whole
					// op budget inside one scheduler slice and the readers never
					// observe a live cache; yielding forces real interleaving.
					runtime.Gosched()
				}
				ki := w + writers*(op%(numKeys/writers)) // this writer's key slice
				seq++
				if op%7 == 6 {
					deleteIssued[ki].Store(seq)
					if err := se.Delete(key(ki)); err != nil {
						fail("delete: %v", err)
						return
					}
					acked[ki].Store(seq << 1)
				} else {
					if err := se.Put(key(ki), val(seq)); err != nil {
						fail("put: %v", err)
						return
					}
					acked[ki].Store(seq<<1 | 1)
				}
			}
		}(w)
	}

	readLoop := func(r int, useGetInto bool) {
		defer wg.Done()
		se := wst.NewSession(simclock.New(0))
		defer releaseSession(se)
		vr, _ := se.(kvstore.ValueReader)
		rng := rand.New(rand.NewSource(int64(r)))
		buf := make([]byte, 0, 64)
		for done := false; !done; {
			select {
			case <-writersDone:
				done = true // one final sweep below
			default:
			}
			ki := rng.Intn(numKeys)
			s0 := acked[ki].Load()
			var (
				got []byte
				ok  bool
				err error
			)
			if useGetInto && vr != nil {
				got, ok, err = vr.GetInto(key(ki), buf[:0])
			} else {
				got, ok, err = se.Get(key(ki))
			}
			if err != nil {
				fail("get: %v", err)
				return
			}
			seq0 := s0 >> 1
			if ok {
				var seqV uint64
				if _, perr := fmt.Sscanf(string(got), "%d", &seqV); perr != nil {
					fail("unparseable value %q for key %d", got, ki)
					return
				}
				if seqV < seq0 {
					fail("STALE READ key %d: value seq %d < acked seq %d (state %#x)",
						ki, seqV, seq0, s0)
					return
				}
			} else if s0&1 == 1 && deleteIssued[ki].Load() < seq0 {
				fail("LOST KEY %d: not found, but acked present at seq %d with no newer delete issued",
					ki, seq0)
				return
			}
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go readLoop(r, r%2 == 0)
	}

	// A disruptor periodically drops the whole cache (the FLUSHALL /
	// crash-recovery path); this must never produce an oracle violation, only
	// cold misses.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-writersDone:
				return
			case <-time.After(500 * time.Microsecond):
			}
			if i%16 == 15 {
				cache.InvalidateAll()
			} else {
				cache.Invalidate(key(i % numKeys))
			}
		}
	}()

	go func() {
		writerWG.Wait()
		close(writersDone)
	}()

	writerWG.Wait()
	wg.Wait()
	if msg := violation.Load(); msg != nil {
		t.Fatal(*msg)
	}
	s := cache.Stats()
	t.Logf("cache after stress: hits=%d misses=%d admits=%d raced=%d evictions=%d invalidations=%d",
		s.Hits, s.Misses, s.Admits, s.AdmitsRaced, s.Evictions, s.Invalidations)
	if s.Hits == 0 || s.Admits == 0 {
		t.Fatal("stress exercised no cache hits/admissions — not a meaningful test")
	}
}

func releaseSession(se kvstore.Session) {
	if r, ok := se.(interface{ Release() error }); ok {
		r.Release()
	}
}
