// Package hotcache is a DRAM front-end read cache for the persistent-memory
// engine: a sharded, byte-capacity-bounded key→value cache with TinyLFU-style
// frequency admission (count-min sketch behind a doorkeeper bloom) over
// segmented-LRU eviction, and strict invalidation on write.
//
// The design target is the zipfian head of a skewed workload ("Observations
// on Porting In-memory KV stores to Persistent Memory", PAPERS.md): PM reads
// are several times slower than DRAM, so absorbing the hottest few percent of
// keys in DRAM removes most of the engine's read work. Admission control is
// what makes a small cache effective under scans and one-hit-wonder floods:
// a key only displaces a resident victim when its estimated access frequency
// is higher, so the hot head cannot be churned out by the cold tail.
//
// Correctness contract: a cache hit must be indistinguishable from an engine
// read ordered at some point since the key's last local write. Two rules
// enforce it:
//
//   - Every write path that can change a key invalidates it AFTER the engine
//     write has been applied (so a later miss re-reads the new value), and
//     before the write is acknowledged to the client.
//   - A miss-fill is version-gated: Get returns a per-shard version token
//     captured before the engine read, and Add admits only if no invalidation
//     touched the shard in between. A concurrent writer can therefore never
//     lose its invalidation to an in-flight fill that read the old value.
//
// The cache is volatile by construction: Crash/recovery paths call
// InvalidateAll and restart cold, so nothing read after recovery can come
// from pre-crash DRAM state.
//
// All methods are safe for concurrent use and safe on a nil *Cache (misses
// and no-ops), so call sites need no "is caching on" branches.
package hotcache

import (
	"sync"
	"sync/atomic"

	"chameleondb/internal/obs"
	"chameleondb/internal/xhash"
)

const (
	// shardCount spreads lock contention; must be a power of two.
	shardCount = 64
	// entryOverhead is the accounted per-entry bookkeeping cost (map slot,
	// entry struct, list links) added to len(key)+len(value).
	entryOverhead = 64
	// protectedFrac is the fraction of a shard's capacity reserved for the
	// protected segment (entries with at least two hits).
	protectedFracNum, protectedFracDen = 4, 5
	// sampleFactor: the admission filter's frequency sample is reset (halved)
	// after this many lookups per shard, keeping the sketch an estimate of
	// *recent* popularity.
	sampleSize = 16384
)

// segment identifiers for entry placement.
const (
	segProbation = iota
	segProtected
)

// entryInline is the in-struct key+value storage. Pairs that fit produce NO
// per-entry heap allocations: under write-invalidation churn an allocating
// cache fragments its working set across the heap and its hit path slowly
// accretes cache and TLB misses (measured: ~40% slower hits after a few
// million invalidate/admit cycles). Inline entries recycled through the
// shard's freelist keep the resident set on the same pages for the cache's
// lifetime. Larger pairs spill to the heap and are still correct, just not
// allocation-free. 128 covers YCSB-style ~100 B records with small keys;
// measured at value-size 100, the spill path cost the cache its entire win.
const entryInline = 128

// entry is one resident key. Entries are intrusive doubly-linked list nodes
// owned by their shard and recycled through its freelist; key and value are
// private copies held inline when they fit, in the spill slices otherwise.
type entry struct {
	prev, next *entry
	hash       uint64 // shard-selection hash of the key; avoids rehashing on eviction
	spill      []byte // heap key+value when the pair outgrows kv; nil otherwise
	klen, vlen uint32
	seg        uint8
	kv         [entryInline]byte
}

func (e *entry) keyBytes() []byte {
	if e.spill != nil {
		return e.spill[:e.klen]
	}
	return e.kv[:e.klen]
}

func (e *entry) valBytes() []byte {
	if e.spill != nil {
		return e.spill[e.klen : int(e.klen)+int(e.vlen)]
	}
	return e.kv[e.klen : int(e.klen)+int(e.vlen)]
}

// keyEqual reports whether this entry holds key (entries are looked up by
// hash; the stored bytes are the identity check, like the engine's own
// collision fallback).
func (e *entry) keyEqual(key []byte) bool {
	return int(e.klen) == len(key) && string(e.keyBytes()) == string(key)
}

// set stores the pair, reusing the inline buffer or sizing the spill slice.
func (e *entry) set(key, value []byte) {
	e.klen = uint32(len(key))
	e.vlen = uint32(len(value))
	n := len(key) + len(value)
	if n <= entryInline {
		e.spill = nil
		copy(e.kv[:], key)
		copy(e.kv[len(key):], value)
		return
	}
	if cap(e.spill) < n {
		e.spill = make([]byte, n)
	}
	e.spill = e.spill[:n]
	copy(e.spill, key)
	copy(e.spill[len(key):], value)
}

func (e *entry) cost() int64 { return int64(e.klen) + int64(e.vlen) + entryOverhead }

// list is an intrusive LRU list with a sentinel root: root.next is MRU,
// root.prev is LRU.
type list struct{ root entry }

func (l *list) init() {
	l.root.next = &l.root
	l.root.prev = &l.root
}

func (l *list) pushFront(e *entry) {
	e.prev = &l.root
	e.next = l.root.next
	e.next.prev = e
	l.root.next = e
}

func (l *list) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (l *list) back() *entry {
	if l.root.prev == &l.root {
		return nil
	}
	return l.root.prev
}

// shard is one lock domain: a hash slice of the key space with its own LRU
// segments, frequency sketch, and invalidation version.
//
// The index maps the key's 64-bit hash to its entry; the entry's stored key
// bytes are the identity check. Two live keys colliding on all 64 bits would
// contend for one slot (the second stays uncacheable while the first is
// resident) — a miss, never a wrong value. Hash keys keep the map free of
// string headers and key allocations.
type shard struct {
	mu sync.Mutex

	m         map[uint64]*entry
	probation list
	protected list
	free      *entry // freelist of recycled entries, linked through next

	bytes     int64 // total accounted cost of resident entries
	protBytes int64 // accounted cost of the protected segment

	version uint64 // bumped by every invalidation that touches this shard

	freq    sketch
	door    doorkeeper
	samples int

	cap      int64
	protCap  int64
	maxEntry int64
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits           int64
	Misses         int64
	Admits         int64
	AdmitsRejected int64 // rejected by frequency admission (victim was hotter)
	AdmitsRaced    int64 // rejected by the version gate (invalidated mid-fill)
	Evictions      int64
	Invalidations  int64
	Bytes          int64
	Entries        int64
	Capacity       int64
}

// HitRatio returns hits/(hits+misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the sharded hot-key cache. Create with New; nil is a valid
// "caching disabled" cache.
type Cache struct {
	shards [shardCount]shard
	cap    int64

	hits           atomic.Int64
	misses         atomic.Int64
	admits         atomic.Int64
	admitsRejected atomic.Int64
	admitsRaced    atomic.Int64
	evictions      atomic.Int64
	invalidations  atomic.Int64
	bytes          atomic.Int64
	entries        atomic.Int64
}

// New creates a cache bounded at capacityBytes of accounted entry cost.
// capacityBytes <= 0 returns nil (caching off), which every method accepts.
func New(capacityBytes int64) *Cache {
	if capacityBytes <= 0 {
		return nil
	}
	c := &Cache{cap: capacityBytes}
	perShard := capacityBytes / shardCount
	if perShard < 1 {
		perShard = 1
	}
	// The sketch tracks roughly the keys that could be resident; 128 B is a
	// conservative mean entry cost for sizing only.
	counters := nextPow2(uint64(perShard/32) + 256)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.m = make(map[uint64]*entry)
		sh.probation.init()
		sh.protected.init()
		sh.cap = perShard
		sh.protCap = perShard * protectedFracNum / protectedFracDen
		// One entry may not monopolize a shard: oversized values bypass the
		// cache entirely rather than evicting the whole hot set.
		sh.maxEntry = perShard / 4
		if sh.maxEntry < 1 {
			sh.maxEntry = 1
		}
		sh.freq.init(counters)
		sh.door.init(counters * 8)
	}
	return c
}

// Capacity returns the configured byte bound (0 for a nil cache).
func (c *Cache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.cap
}

func (c *Cache) shardFor(h uint64) *shard { return &c.shards[h&(shardCount-1)] }

// Get looks key up, appending the cached value to dst on a hit (strconv.Append
// style: the result never aliases cache-internal memory). The returned token
// is the key's shard invalidation version, to be passed to Add if the caller
// fills the cache from an engine read: capture the token BEFORE the engine
// read, i.e. use this Get's token.
//
// Every lookup — hit or miss — feeds the admission filter's frequency sketch,
// so a key becomes admittable by being asked for, not by being admitted.
func (c *Cache) Get(key, dst []byte) (val []byte, ok bool, token uint64) {
	if c == nil {
		return dst, false, 0
	}
	h := xhash.Sum64(key)
	sh := c.shardFor(h)
	sh.mu.Lock()
	sh.sample(xhash.Uint64(h))
	token = sh.version
	e := sh.m[h]
	if e == nil || !e.keyEqual(key) {
		sh.mu.Unlock()
		c.misses.Add(1)
		return dst, false, token
	}
	// Segmented LRU: a probation hit promotes to protected (evidence of
	// reuse); a protected hit refreshes recency. Promotion may push the
	// protected tail back to probation to respect the segment budget.
	switch e.seg {
	case segProbation:
		sh.probation.remove(e)
		e.seg = segProtected
		sh.protected.pushFront(e)
		sh.protBytes += e.cost()
		for sh.protBytes > sh.protCap {
			d := sh.protected.back()
			if d == nil {
				break
			}
			sh.protected.remove(d)
			d.seg = segProbation
			sh.probation.pushFront(d)
			sh.protBytes -= d.cost()
		}
	default:
		// Refresh recency, skipping the splice when the entry is already MRU
		// — under a zipfian head that is the common case on the hot path.
		if sh.protected.root.next != e {
			sh.protected.remove(e)
			sh.protected.pushFront(e)
		}
	}
	dst = append(dst, e.valBytes()...)
	sh.mu.Unlock()
	c.hits.Add(1)
	return dst, true, token
}

// Touch feeds key into the frequency sketch without a lookup. Write paths use
// it so heavily written keys build admission pressure too.
func (c *Cache) Touch(key []byte) {
	if c == nil {
		return
	}
	h := xhash.Sum64(key)
	sh := c.shardFor(h)
	sh.mu.Lock()
	sh.sample(xhash.Uint64(h))
	sh.mu.Unlock()
}

// sample records one access for the admission filter, resetting the sample
// window when it fills. m is the pre-mixed key hash (xhash.Uint64 of the
// shard hash) from which sketch and doorkeeper cut their positions. Callers
// hold sh.mu.
func (sh *shard) sample(m uint64) {
	if sh.door.contains(m) {
		sh.freq.increment(m)
	} else {
		sh.door.add(m)
	}
	sh.samples++
	if sh.samples >= sampleSize {
		sh.samples = 0
		sh.freq.halve()
		sh.door.clear()
	}
}

// estimate is the admission-time popularity of pre-mixed hash m. Callers
// hold sh.mu.
func (sh *shard) estimate(m uint64) uint32 {
	f := sh.freq.estimate(m)
	if sh.door.contains(m) {
		f++
	}
	return f
}

// Add offers (key, value) for admission after an engine read. token must be
// the one returned by the Get (miss) that preceded the engine read; if any
// invalidation has touched the shard since, the fill is dropped — the engine
// value may predate a concurrent write. Admission is frequency-controlled:
// when the shard is full, the candidate must beat the probation-tail victim's
// estimated frequency to displace it. Returns whether the entry is resident.
func (c *Cache) Add(key, value []byte, token uint64) bool {
	if c == nil {
		return false
	}
	h := xhash.Sum64(key)
	sh := c.shardFor(h)
	cost := int64(len(key)) + int64(len(value)) + entryOverhead
	if cost > sh.maxEntry {
		c.admitsRejected.Add(1)
		return false
	}
	sh.mu.Lock()
	if sh.version != token {
		sh.mu.Unlock()
		c.admitsRaced.Add(1)
		return false
	}
	if e := sh.m[h]; e != nil {
		// A racing fill (or a re-read) already admitted the key: the version
		// gate held for both fills, so both values are current reads of an
		// unchanged key; keep the resident one. A full-hash collision also
		// lands here — the slot is taken, so the candidate is not cacheable.
		sh.mu.Unlock()
		return e.keyEqual(key)
	}
	// Make room: the candidate competes with the probation tail. A candidate
	// colder than the victim it must displace is rejected — TinyLFU's
	// scan/one-hit-wonder resistance. (When several victims are needed,
	// eviction proceeds victim by victim and stops — candidate rejected — the
	// moment one victim out-ranks the candidate, like Caffeine's policy.)
	candFreq := sh.estimate(xhash.Uint64(h))
	var evicted, freed int64
	admitted := true
	for sh.bytes+cost > sh.cap {
		victim := sh.probation.back()
		if victim == nil {
			victim = sh.protected.back()
		}
		if victim == nil {
			break
		}
		if sh.estimate(xhash.Uint64(victim.hash)) > candFreq {
			admitted = false
			break
		}
		vcost := victim.cost()
		sh.unlink(victim)
		evicted++
		freed += vcost
	}
	if admitted {
		e := sh.alloc()
		e.hash = h
		e.seg = segProbation
		e.set(key, value)
		sh.m[h] = e
		sh.probation.pushFront(e)
		sh.bytes += cost
	}
	sh.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.bytes.Add(-freed)
		c.entries.Add(-evicted)
	}
	if !admitted {
		c.admitsRejected.Add(1)
		return false
	}
	c.admits.Add(1)
	c.bytes.Add(cost)
	c.entries.Add(1)
	return true
}

// alloc returns a recycled entry from the freelist, or a fresh one.
// Callers hold sh.mu.
func (sh *shard) alloc() *entry {
	if e := sh.free; e != nil {
		sh.free = e.next
		e.next = nil
		return e
	}
	return &entry{}
}

// unlink removes e from its segment and the map, adjusts shard accounting,
// and recycles the entry onto the freelist. e must not be used afterwards.
// Callers hold sh.mu and own the cache-level counter and gauge updates.
func (sh *shard) unlink(e *entry) {
	cost := e.cost()
	if e.seg == segProtected {
		sh.protected.remove(e)
		sh.protBytes -= cost
	} else {
		sh.probation.remove(e)
	}
	delete(sh.m, e.hash)
	sh.bytes -= cost
	// Oversized spill buffers would pin their worst-case allocation forever;
	// recycle modest ones, drop the rest to the garbage collector.
	if cap(e.spill) > 4*entryInline {
		e.spill = nil
	}
	e.prev = nil
	e.next = sh.free
	sh.free = e
}

// Invalidate removes key and bumps the shard's version so any in-flight fill
// that read the engine before this point can no longer be admitted. Call it
// after the engine write has been applied and before the write is
// acknowledged.
func (c *Cache) Invalidate(key []byte) {
	if c == nil {
		return
	}
	h := xhash.Sum64(key)
	sh := c.shardFor(h)
	sh.mu.Lock()
	sh.version++
	if e := sh.m[h]; e != nil && e.keyEqual(key) {
		cost := e.cost()
		sh.unlink(e)
		c.bytes.Add(-cost)
		c.entries.Add(-1)
	}
	sh.mu.Unlock()
	c.invalidations.Add(1)
}

// InvalidateAll empties the cache and bumps every shard's version: used by
// FLUSHALL, crash/recovery (the cache is volatile; recovery starts cold), and
// full-resync store resets.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.version++
		n := int64(len(sh.m))
		sh.m = make(map[uint64]*entry)
		sh.probation.init()
		sh.protected.init()
		sh.free = nil
		c.bytes.Add(-sh.bytes)
		sh.bytes = 0
		sh.protBytes = 0
		sh.mu.Unlock()
		c.entries.Add(-n)
		c.invalidations.Add(n)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Admits:         c.admits.Load(),
		AdmitsRejected: c.admitsRejected.Load(),
		AdmitsRaced:    c.admitsRaced.Load(),
		Evictions:      c.evictions.Load(),
		Invalidations:  c.invalidations.Load(),
		Bytes:          c.bytes.Load(),
		Entries:        c.entries.Load(),
		Capacity:       c.cap,
	}
}

// Register wires the cache's counters into an obs registry under hotcache_*
// names, so /stats.json, /metrics, and INFO all read the same atomics.
func (c *Cache) Register(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	r.CounterFunc("hotcache_hits", c.hits.Load)
	r.CounterFunc("hotcache_misses", c.misses.Load)
	r.CounterFunc("hotcache_admits", c.admits.Load)
	r.CounterFunc("hotcache_admits_rejected", c.admitsRejected.Load)
	r.CounterFunc("hotcache_admits_raced", c.admitsRaced.Load)
	r.CounterFunc("hotcache_evictions", c.evictions.Load)
	r.CounterFunc("hotcache_invalidations", c.invalidations.Load)
	r.GaugeFunc("hotcache_bytes", c.bytes.Load)
	r.GaugeFunc("hotcache_entries", c.entries.Load)
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	return v + 1
}
