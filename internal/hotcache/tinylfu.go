package hotcache

// sketch is a count-min sketch with 4-bit counters, the frequency half of the
// TinyLFU admission filter. Four rows of packed nibbles; an increment bumps
// the counter in each row (capped at 15), an estimate takes the row minimum.
// halve() divides every counter by two, aging the sample so the sketch tracks
// recent popularity rather than all-time popularity.
//
// Counters are packed 16 per uint64. Row width is a power of two so index
// extraction is a mask, and is capped at 1<<16 so each row's slot can be cut
// from one 16-bit chunk of a single pre-mixed hash: the whole
// sketch+doorkeeper access costs one multiply-mix, which is what keeps the
// admission filter off the cache's hit-path profile.
type sketch struct {
	rows [4][]uint64
	mask uint64 // counter-index mask per row
}

// maxCounters bounds a row to what a 16-bit chunk can index.
const maxCounters = 1 << 16

// init sizes each row to counters 4-bit slots (counters must be a power of
// two; clamped to [16, 1<<16]).
func (s *sketch) init(counters uint64) {
	if counters < 16 {
		counters = 16
	}
	if counters > maxCounters {
		counters = maxCounters
	}
	words := counters / 16
	for i := range s.rows {
		s.rows[i] = make([]uint64, words)
	}
	s.mask = counters - 1
}

// slot derives the (word, shift) position of m's counter in row r, using
// row r's 16-bit chunk of the pre-mixed hash m.
func (s *sketch) slot(r int, m uint64) (word int, shift uint) {
	idx := (m >> (16 * uint(r))) & s.mask
	return int(idx / 16), uint(idx%16) * 4
}

func (s *sketch) increment(m uint64) {
	for r := range s.rows {
		w, sh := s.slot(r, m)
		if (s.rows[r][w]>>sh)&0xf < 15 {
			s.rows[r][w] += 1 << sh
		}
	}
}

func (s *sketch) estimate(m uint64) uint32 {
	min := uint32(15)
	for r := range s.rows {
		w, sh := s.slot(r, m)
		if v := uint32((s.rows[r][w] >> sh) & 0xf); v < min {
			min = v
		}
	}
	return min
}

// halve ages every counter: each 4-bit slot is shifted right by one in place.
func (s *sketch) halve() {
	for r := range s.rows {
		row := s.rows[r]
		for i, w := range row {
			// Clear the low bit of every nibble, then shift the whole word:
			// each nibble halves without borrowing from its neighbor.
			row[i] = (w &^ 0x1111111111111111) >> 1
		}
	}
}

// doorkeeper is the bloom-filter front of the admission filter: first-time
// keys land here instead of the sketch, so one-hit wonders never consume
// sketch counters. Cleared on every sample-window reset. Its two probe
// positions come from bit windows of the same pre-mixed hash the sketch
// uses — no hashing of its own.
type doorkeeper struct {
	bits []uint64
	mask uint64
}

// init sizes the filter to nbits (rounded up to a power of two, >= 64).
func (d *doorkeeper) init(nbits uint64) {
	nbits = nextPow2(nbits)
	if nbits < 64 {
		nbits = 64
	}
	d.bits = make([]uint64, nbits/64)
	d.mask = nbits - 1
}

func (d *doorkeeper) pos(i int, m uint64) (word int, bit uint64) {
	idx := (m >> (8 + 21*uint(i))) & d.mask
	return int(idx / 64), 1 << (idx % 64)
}

func (d *doorkeeper) add(m uint64) {
	for i := 0; i < 2; i++ {
		w, b := d.pos(i, m)
		d.bits[w] |= b
	}
}

func (d *doorkeeper) contains(m uint64) bool {
	for i := 0; i < 2; i++ {
		w, b := d.pos(i, m)
		if d.bits[w]&b == 0 {
			return false
		}
	}
	return true
}

func (d *doorkeeper) clear() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}
