package hotcache

import (
	"fmt"
	"testing"

	"chameleondb/internal/xhash"
)

func k(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// fill runs the miss→fill protocol for one key: a missed Get yields the
// token, Add offers the value under it.
func fill(c *Cache, key, val []byte) bool {
	_, ok, token := c.Get(key, nil)
	if ok {
		return true
	}
	return c.Add(key, val, token)
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	if c2 := New(0); c2 != nil {
		t.Fatal("New(0) should return nil (caching off)")
	}
	if c2 := New(-5); c2 != nil {
		t.Fatal("New(-5) should return nil")
	}
	if _, ok, _ := c.Get(k(1), nil); ok {
		t.Fatal("nil cache hit")
	}
	if c.Add(k(1), v(1), 0) {
		t.Fatal("nil cache admitted")
	}
	c.Invalidate(k(1))
	c.InvalidateAll()
	c.Touch(k(1))
	c.Register(nil)
	if c.Capacity() != 0 {
		t.Fatal("nil cache capacity")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats: %+v", s)
	}
}

func TestGetAddRoundTrip(t *testing.T) {
	c := New(1 << 20)
	if _, ok, _ := c.Get(k(1), nil); ok {
		t.Fatal("hit on empty cache")
	}
	if !fill(c, k(1), v(1)) {
		t.Fatal("fill into empty cache rejected")
	}
	got, ok, _ := c.Get(k(1), nil)
	if !ok || string(got) != string(v(1)) {
		t.Fatalf("get after fill: ok=%v got=%q", ok, got)
	}
	// Append semantics: the value lands after dst's existing bytes and the
	// result must be a private copy.
	dst := []byte("prefix-")
	got, ok, _ = c.Get(k(1), dst)
	if !ok || string(got) != "prefix-"+string(v(1)) {
		t.Fatalf("append get: ok=%v got=%q", ok, got)
	}
	got[len("prefix-")] ^= 0xff
	again, _, _ := c.Get(k(1), nil)
	if string(again) != string(v(1)) {
		t.Fatal("returned value aliases cache memory")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 2 || s.Admits != 1 || s.Entries != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestInvalidateRemovesAndGates(t *testing.T) {
	c := New(1 << 20)
	fill(c, k(1), v(1))
	c.Invalidate(k(1))
	if _, ok, _ := c.Get(k(1), nil); ok {
		t.Fatal("hit after invalidate")
	}

	// Version gate: a token captured before an invalidation must not admit —
	// this is the stale-fill race (engine read raced by a write).
	_, ok, token := c.Get(k(2), nil)
	if ok {
		t.Fatal("unexpected hit")
	}
	c.Invalidate(k(2)) // concurrent write lands between engine read and fill
	if c.Add(k(2), v(2), token) {
		t.Fatal("stale fill admitted past an invalidation")
	}
	if _, ok, _ := c.Get(k(2), nil); ok {
		t.Fatal("stale value resident")
	}
	if got := c.Stats().AdmitsRaced; got != 1 {
		t.Fatalf("AdmitsRaced = %d, want 1", got)
	}

	// The gate is per-shard: invalidating an unrelated key in another shard
	// must not starve fills forever. Find a key in a different shard.
	other := 0
	h2 := xhashShard(c, k(3))
	for i := 4; ; i++ {
		if xhashShard(c, k(i)) != h2 {
			other = i
			break
		}
	}
	_, _, token = c.Get(k(3), nil)
	c.Invalidate(k(other))
	if !c.Add(k(3), v(3), token) {
		t.Fatal("fill rejected by invalidation in a different shard")
	}
}

func xhashShard(c *Cache, key []byte) *shard {
	_, _, _ = c.Get(key, nil) // keep counters realistic; not required
	return c.shardFor(xhash.Sum64(key))
}

func TestInvalidateAll(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 100; i++ {
		fill(c, k(i), v(i))
	}
	if c.Stats().Entries == 0 {
		t.Fatal("nothing admitted")
	}
	c.InvalidateAll()
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("after InvalidateAll: %+v", s)
	}
	for i := 0; i < 100; i++ {
		if _, ok, _ := c.Get(k(i), nil); ok {
			t.Fatalf("key %d survived InvalidateAll", i)
		}
	}
}

func TestCapacityBound(t *testing.T) {
	const capacity = 64 << 10
	c := New(capacity)
	val := make([]byte, 100)
	for i := 0; i < 5000; i++ {
		fill(c, k(i), val)
	}
	s := c.Stats()
	if s.Bytes > capacity {
		t.Fatalf("resident bytes %d exceed capacity %d", s.Bytes, capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite 5000 fills into a 64 KiB cache")
	}
	// Gauge consistency: recompute resident cost from the shards.
	var shardBytes, shardEntries int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		shardBytes += sh.bytes
		shardEntries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	if shardBytes != s.Bytes || shardEntries != s.Entries {
		t.Fatalf("gauge drift: shards have %d B / %d entries, stats say %d B / %d entries",
			shardBytes, shardEntries, s.Bytes, s.Entries)
	}
}

func TestOversizedValueBypasses(t *testing.T) {
	c := New(64 << 10) // 1 KiB per shard, max entry ~256 B
	big := make([]byte, 512)
	_, _, token := c.Get(k(1), nil)
	if c.Add(k(1), big, token) {
		t.Fatal("oversized value admitted")
	}
	if c.Stats().AdmitsRejected != 1 {
		t.Fatal("oversized rejection not counted")
	}
}

// TestAdmissionProtectsHotKeys is the TinyLFU property: a stream of
// one-hit-wonder keys must not churn frequently-accessed keys out of a full
// cache.
func TestAdmissionProtectsHotKeys(t *testing.T) {
	c := New(256 << 10)
	val := make([]byte, 64)
	const hot = 64
	// Establish the hot set: admit, then re-hit so each is promoted to the
	// protected segment and its sketch frequency clearly beats a cold key's.
	for round := 0; round < 10; round++ {
		for i := 0; i < hot; i++ {
			fill(c, k(i), val)
		}
	}
	for i := 0; i < hot; i++ {
		if _, ok, _ := c.Get(k(i), nil); !ok {
			t.Fatalf("hot key %d not resident before flood", i)
		}
	}
	// Flood with one-hit wonders — enough to overflow capacity many times.
	for i := 10000; i < 30000; i++ {
		fill(c, k(i), val)
	}
	lost := 0
	for i := 0; i < hot; i++ {
		if _, ok, _ := c.Get(k(i), nil); !ok {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("cold flood evicted %d/%d hot keys", lost, hot)
	}
}

func TestHitRatio(t *testing.T) {
	c := New(1 << 20)
	fill(c, k(1), v(1)) // one miss
	c.Get(k(1), nil)    // one hit
	c.Get(k(1), nil)    // two
	c.Get(k(1), nil)    // three
	if r := c.Stats().HitRatio(); r != 0.75 {
		t.Fatalf("hit ratio = %v, want 0.75", r)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Fatal("idle hit ratio should be 0")
	}
}

func TestSketchCountersAndHalve(t *testing.T) {
	var s sketch
	s.init(1024)
	h := xhash.Sum64([]byte("x"))
	for i := 0; i < 40; i++ {
		s.increment(h)
	}
	if got := s.estimate(h); got != 15 {
		t.Fatalf("estimate after 40 increments = %d, want cap 15", got)
	}
	s.halve()
	if got := s.estimate(h); got != 7 {
		t.Fatalf("estimate after halve = %d, want 7", got)
	}
	if got := s.estimate(xhash.Sum64([]byte("never-seen-key-zzz"))); got > 2 {
		t.Fatalf("cold key estimate = %d, want ~0", got)
	}
}

func TestDoorkeeper(t *testing.T) {
	var d doorkeeper
	d.init(4096)
	h := xhash.Sum64([]byte("y"))
	if d.contains(h) {
		t.Fatal("empty doorkeeper contains key")
	}
	d.add(h)
	if !d.contains(h) {
		t.Fatal("doorkeeper lost key")
	}
	d.clear()
	if d.contains(h) {
		t.Fatal("doorkeeper survived clear")
	}
}
