package hotcache

import (
	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/obs"
	"chameleondb/internal/simclock"
	"chameleondb/internal/wlog"
)

// Wrapped is a kvstore.Store whose sessions read through a hot-key cache and
// invalidate it on every write. Wrapping the store (rather than sprinkling
// cache calls over the server's command dispatch) gives ONE invalidation
// surface: every session handed out — wire connections, the crash-sweep
// driver, the embedded facade — goes through the same read/write interposer,
// so a write path cannot forget to invalidate.
//
// Invalidation ordering: the engine write is applied first, then the cache
// entry is dropped, then the wrapped call returns (and the server acks). A
// reader that misses after the ack therefore re-reads the engine and sees the
// new value; a reader whose miss-fill was in flight across the write is
// rejected by the version gate (see Cache.Add).
//
// The cache is volatile: Crash empties it, so post-recovery reads start cold
// and can never observe pre-crash DRAM state.
type Wrapped struct {
	inner kvstore.Store
	cache *Cache
}

// Wrap interposes c between callers and st. A nil cache returns st unchanged,
// so call sites need no "is caching on" branch.
func Wrap(st kvstore.Store, c *Cache) kvstore.Store {
	if c == nil {
		return st
	}
	return &Wrapped{inner: st, cache: c}
}

var _ kvstore.Store = (*Wrapped)(nil)

// Unwrap returns the store under the cache.
func (w *Wrapped) Unwrap() kvstore.Store { return w.inner }

// Cache returns the interposed cache.
func (w *Wrapped) Cache() *Cache { return w.cache }

// Name implements kvstore.Store.
func (w *Wrapped) Name() string { return w.inner.Name() + "+hotcache" }

// NewSession implements kvstore.Store; the session is the actual interposer.
func (w *Wrapped) NewSession(c *simclock.Clock) kvstore.Session {
	inner := w.inner.NewSession(c)
	s := &session{inner: inner, cache: w.cache}
	s.vr, _ = inner.(kvstore.ValueReader)
	s.bw, _ = inner.(kvstore.BatchWriter)
	s.cd, _ = inner.(kvstore.ConditionalDeleter)
	s.incr, _ = inner.(kvstore.Incrementer)
	s.sc, _ = inner.(kvstore.Scanner)
	return s
}

// DRAMFootprint implements kvstore.Store: the cache's resident bytes are
// DRAM spend and are reported as such.
func (w *Wrapped) DRAMFootprint() int64 {
	return w.inner.DRAMFootprint() + w.cache.Stats().Bytes
}

// DeviceStats implements kvstore.Store.
func (w *Wrapped) DeviceStats() device.Stats { return w.inner.DeviceStats() }

// Crash implements kvstore.Store. The cache is volatile state: a power
// failure loses it, so recovery starts cold.
func (w *Wrapped) Crash() {
	w.cache.InvalidateAll()
	w.inner.Crash()
}

// Recover implements kvstore.Store.
func (w *Wrapped) Recover(c *simclock.Clock) error { return w.inner.Recover(c) }

// Close implements kvstore.Store.
func (w *Wrapped) Close() error { return w.inner.Close() }

// Device forwards the crash-sweep device hook when present.
func (w *Wrapped) Device() *device.Device {
	if d, ok := w.inner.(interface{ Device() *device.Device }); ok {
		return d.Device()
	}
	return nil
}

// Log forwards the server's group-commit log hook when present.
func (w *Wrapped) Log() *wlog.Log {
	if l, ok := w.inner.(interface{ Log() *wlog.Log }); ok {
		return l.Log()
	}
	return nil
}

// Registry implements obs.Provider when the inner store does, with the
// cache's own counters registered alongside the store's.
func (w *Wrapped) Registry() *obs.Registry {
	if p, ok := w.inner.(obs.Provider); ok {
		return p.Registry()
	}
	return nil
}

// RecoverTimes forwards the restart-time probe when present.
func (w *Wrapped) RecoverTimes() (ready, full int64) {
	if r, ok := w.inner.(interface{ RecoverTimes() (int64, int64) }); ok {
		return r.RecoverTimes()
	}
	return 0, 0
}

// VerifyIntegrity forwards the sweep's integrity hook when present.
func (w *Wrapped) VerifyIntegrity(c *simclock.Clock) error {
	if v, ok := w.inner.(interface {
		VerifyIntegrity(*simclock.Clock) error
	}); ok {
		return v.VerifyIntegrity(c)
	}
	return nil
}

// FlushAll forwards the maintenance hook when present.
func (w *Wrapped) FlushAll(c *simclock.Clock) error {
	if f, ok := w.inner.(interface {
		FlushAll(*simclock.Clock) error
	}); ok {
		return f.FlushAll(c)
	}
	return nil
}

// DumpABIs forwards the maintenance hook when present.
func (w *Wrapped) DumpABIs(c *simclock.Clock) error {
	if d, ok := w.inner.(interface {
		DumpABIs(*simclock.Clock) error
	}); ok {
		return d.DumpABIs(c)
	}
	return nil
}

// CompactLog forwards the maintenance hook when present.
func (w *Wrapped) CompactLog(c *simclock.Clock, budget int64) (int64, error) {
	if g, ok := w.inner.(interface {
		CompactLog(*simclock.Clock, int64) (int64, error)
	}); ok {
		return g.CompactLog(c, budget)
	}
	return 0, nil
}

// session interposes the cache on one worker's reads and writes. Like the
// sessions it wraps, it is not safe for concurrent use — but the cache is
// shared and concurrency-safe, so different sessions coordinate only through
// it.
type session struct {
	inner kvstore.Session
	cache *Cache

	vr   kvstore.ValueReader
	bw   kvstore.BatchWriter
	cd   kvstore.ConditionalDeleter
	incr kvstore.Incrementer
	sc   kvstore.Scanner
}

var (
	_ kvstore.Session            = (*session)(nil)
	_ kvstore.ValueReader        = (*session)(nil)
	_ kvstore.BatchWriter        = (*session)(nil)
	_ kvstore.ConditionalDeleter = (*session)(nil)
	_ kvstore.Incrementer        = (*session)(nil)
	_ kvstore.Scanner            = (*session)(nil)
)

// Put implements kvstore.Session: engine write, then invalidate, then return
// (the caller acks after we return, so no stale hit can survive an ack).
func (s *session) Put(key, value []byte) error {
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	s.cache.Invalidate(key)
	s.cache.Touch(key)
	return nil
}

// Get implements kvstore.Session: cache first, engine on miss, version-gated
// fill. The token is taken by the cache-miss lookup itself — before the
// engine read — so an invalidation racing the fill always wins.
func (s *session) Get(key []byte) ([]byte, bool, error) {
	val, ok, token := s.cache.Get(key, nil)
	if ok {
		return val, true, nil
	}
	return s.getFill(key, nil, token)
}

// GetInto implements kvstore.ValueReader with the same cache-first protocol.
func (s *session) GetInto(key, dst []byte) ([]byte, bool, error) {
	val, ok, token := s.cache.Get(key, dst)
	if ok {
		return val, true, nil
	}
	return s.getFill(key, dst, token)
}

// getFill is the shared miss path: read the engine and offer the result for
// admission under the shard version captured by the missed lookup.
func (s *session) getFill(key, dst []byte, token uint64) ([]byte, bool, error) {
	var (
		val []byte
		ok  bool
		err error
	)
	if s.vr != nil {
		val, ok, err = s.vr.GetInto(key, dst)
	} else {
		val, ok, err = s.inner.Get(key)
		if ok && dst != nil {
			val = append(dst, val...)
		}
	}
	if err != nil || !ok {
		return val, ok, err
	}
	s.cache.Add(key, valueBytes(val, dst), token)
	return val, ok, nil
}

// valueBytes strips the dst prefix the append-style read carries, so only the
// value itself is cached.
func valueBytes(val, dst []byte) []byte { return val[len(dst):] }

// Delete implements kvstore.Session: engine first, then invalidate.
func (s *session) Delete(key []byte) error {
	if err := s.inner.Delete(key); err != nil {
		return err
	}
	s.cache.Invalidate(key)
	return nil
}

// DeleteIfPresent implements kvstore.ConditionalDeleter. The engine's answer
// is authoritative for existence (DEL's reply count); the cache entry is
// dropped either way — a cached entry for an absent key cannot exist, but the
// invalidation also closes any in-flight fill race.
func (s *session) DeleteIfPresent(key []byte) (bool, error) {
	if s.cd == nil {
		return false, errNoCapability
	}
	existed, err := s.cd.DeleteIfPresent(key)
	if err != nil {
		return existed, err
	}
	s.cache.Invalidate(key)
	return existed, nil
}

// IncrBy implements kvstore.Incrementer: a read-modify-write is a write.
func (s *session) IncrBy(key []byte, delta int64) (int64, error) {
	if s.incr == nil {
		return 0, errNoCapability
	}
	n, err := s.incr.IncrBy(key, delta)
	if err != nil {
		return n, err
	}
	s.cache.Invalidate(key)
	return n, nil
}

// PutBatch implements kvstore.BatchWriter. On error a prefix may have been
// applied (the BatchWriter contract), so every key is invalidated regardless
// — over-invalidation is always safe.
func (s *session) PutBatch(keys, values [][]byte) error {
	if s.bw == nil {
		return errNoCapability
	}
	err := s.bw.PutBatch(keys, values)
	for _, k := range keys {
		s.cache.Invalidate(k)
	}
	if err != nil {
		return err
	}
	for _, k := range keys {
		s.cache.Touch(k)
	}
	return nil
}

// Scan implements kvstore.Scanner, uncached: scans read the engine's
// authoritative view directly (and, thanks to TinyLFU admission, scan traffic
// also cannot flush the hot set out of the cache).
func (s *session) Scan(cursor uint64, limit int) ([]kvstore.KV, uint64, error) {
	if s.sc == nil {
		return nil, 0, errNoCapability
	}
	return s.sc.Scan(cursor, limit)
}

// Snapshot implements kvstore.Scanner, uncached for the same reason.
func (s *session) Snapshot() (kvstore.Snapshot, error) {
	if s.sc == nil {
		return nil, errNoCapability
	}
	return s.sc.Snapshot()
}

// Flush implements kvstore.Session.
func (s *session) Flush() error { return s.inner.Flush() }

// Clock implements kvstore.Session.
func (s *session) Clock() *simclock.Clock { return s.inner.Clock() }

// Release forwards the session-recycling hook when present.
func (s *session) Release() error {
	if r, ok := s.inner.(interface{ Release() error }); ok {
		return r.Release()
	}
	return nil
}

type capabilityError struct{}

func (capabilityError) Error() string { return "hotcache: wrapped store lacks capability" }

var errNoCapability = capabilityError{}
