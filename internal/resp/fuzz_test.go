package resp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRESPParse throws arbitrary bytes at both parser entry points. The
// properties under test:
//
//   - no input panics the reader (malformed lengths, truncated frames,
//     hostile nesting);
//   - a declared length beyond the limits errors instead of allocating — the
//     reader's backing buffer must never grow past what the limits allow for
//     the bytes actually present;
//   - parsing always terminates: every successful ReadCommand consumes at
//     least one input byte, so the drain loop is bounded by len(data).
func FuzzRESPParse(f *testing.F) {
	seeds := []string{
		"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n",
		"PING\r\n",
		"  GET   inline-key \r\n",
		"*0\r\n*1\r\n$0\r\n\r\n",
		"+OK\r\n-ERR nope\r\n:42\r\n$-1\r\n*-1\r\n",
		"*2\r\n:1\r\n*2\r\n+a\r\n$1\r\nb\r\n",
		"$9999999999\r\n",
		"*99999999\r\n",
		"*1\r\n$4\r\nab",
		"*1\r\n$3\r\nabcXY",
		strings.Repeat("*1\r\n", 64) + ":1\r\n",
		"\r\n\r\n\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	lim := Limits{MaxBulkLen: 1 << 16, MaxArrayLen: 128, MaxInlineLen: 1 << 12, MaxDepth: 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Server side: drain commands until error/EOF. Bounded: each
		// successful ReadCommand consumes >= 1 byte.
		r := NewReaderLimits(bytes.NewReader(data), lim)
		for i := 0; i <= len(data); i++ {
			args, err := r.ReadCommand()
			if err != nil {
				break
			}
			if len(args) == 0 {
				t.Fatalf("ReadCommand returned 0 args without error")
			}
			if len(args) > lim.MaxArrayLen {
				t.Fatalf("ReadCommand returned %d args past the %d limit", len(args), lim.MaxArrayLen)
			}
			var total int
			for _, a := range args {
				if len(a) > lim.MaxBulkLen {
					t.Fatalf("arg of %d bytes past the %d bulk limit", len(a), lim.MaxBulkLen)
				}
				total += len(a)
			}
			if total > len(data) {
				t.Fatalf("args claim %d payload bytes from %d input bytes", total, len(data))
			}
			// The backing buffer must stay proportional to real input, never
			// to a hostile declared length.
			if cap(r.buf) > 4*(len(data)+lim.MaxArrayLen*2)+readerBufSize {
				t.Fatalf("backing buffer grew to %d for %d input bytes", cap(r.buf), len(data))
			}
		}

		// Client side: drain replies until error/EOF.
		rr := NewReaderLimits(bytes.NewReader(data), lim)
		for i := 0; i <= len(data); i++ {
			if _, err := rr.ReadReply(); err != nil {
				break
			}
		}
	})
}
