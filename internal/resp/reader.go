package resp

import (
	"bufio"
	"io"
)

// Reader decodes RESP frames from a stream.
//
// ReadCommand is the server-side entry point and is biased toward zero
// allocation in steady state: the argument payloads of every command land in
// one backing buffer that is reused across calls, and the returned [][]byte
// holds views into it. The views are valid only until the next ReadCommand —
// the engine copies what it keeps (the log appender copies key and value into
// its batch chunk), so the handler never needs a second copy.
//
// ReadReply is the client-side entry point; replies are freshly allocated so
// pipelined clients can collect them.
type Reader struct {
	br  *bufio.Reader
	lim Limits

	// Reused per-command storage: arg payloads land in buf, spans records
	// their boundaries (offsets, not slices, because append may move buf
	// mid-command), args is the returned view slice.
	buf   []byte
	spans []span
	args  [][]byte
}

type span struct{ off, n int }

// readerBufSize bounds one buffered line; length headers and inline commands
// must fit in it.
const readerBufSize = 64 << 10

// readerMaxRetain caps the backing buffer kept across batches: one batch of
// huge values does not pin its high-water mark for the connection's lifetime.
const readerMaxRetain = 1 << 20

// NewReader creates a Reader with DefaultLimits.
func NewReader(r io.Reader) *Reader { return NewReaderLimits(r, DefaultLimits()) }

// NewReaderLimits creates a Reader with explicit limits.
func NewReaderLimits(r io.Reader, lim Limits) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, readerBufSize), lim: lim.withDefaults()}
}

// Buffered returns the number of bytes already read from the connection but
// not yet parsed. The server uses it to keep decoding a pipelined batch
// without blocking on the socket.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads one CRLF-terminated line and returns it without the
// terminator. The returned slice aliases the bufio buffer: parse or copy
// before the next read.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, protoErrf("line exceeds %d bytes", readerBufSize)
	}
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("line not CRLF-terminated")
	}
	return line[:len(line)-2], nil
}

// ReadCommand decodes one client command: either an array of bulk strings
// (what every real client sends) or an inline space-separated line (the
// telnet/debug form). Empty frames (bare CRLF, *0 arrays) are skipped, like
// redis does. The returned arguments alias the Reader's internal buffer and
// are valid only until the next ReadCommand call.
func (r *Reader) ReadCommand() ([][]byte, error) {
	r.Release()
	return r.readCommand()
}

// ReadCommandKeep decodes the next command like ReadCommand but pins the
// payloads of every command decoded since the last Release (or plain
// ReadCommand): earlier pinned args stay readable, because the backing buffer
// only accumulates — it is never rewound or overwritten in place, and growth
// reallocates, which leaves old views pointing at intact bytes. This is what
// lets the server collect a run of pipelined SETs and hand their key/value
// spans to the engine's PutBatch with zero copies.
//
// Two caveats: the returned [][]byte header slice is still reused per call
// (append the individual arg slices to caller-owned storage before the next
// read), and pinned memory is only released by Release/ReadCommand — a caller
// that pins must release at batch end or the buffer grows without bound.
func (r *Reader) ReadCommandKeep() ([][]byte, error) {
	return r.readCommand()
}

// Release unpins everything ReadCommandKeep accumulated and (cap-bounded)
// shrinks the backing buffer. The next decoded command starts at offset zero.
func (r *Reader) Release() {
	if cap(r.buf) > readerMaxRetain {
		r.buf = nil
	}
	r.buf = r.buf[:0]
	r.spans = r.spans[:0]
}

func (r *Reader) readCommand() ([][]byte, error) {
	for {
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue // bare CRLF between commands
		}
		if line[0] != TypeArray {
			args, err := r.inlineCommand(line)
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // whitespace-only inline line
			}
			return args, nil
		}
		n, ok := parseInt(line[1:])
		if !ok {
			return nil, protoErrf("invalid multibulk length %q", line[1:])
		}
		if n < 0 || n > int64(r.lim.MaxArrayLen) {
			return nil, protoErrf("multibulk length %d out of range [0, %d]", n, r.lim.MaxArrayLen)
		}
		if n == 0 {
			continue // empty array: no command
		}
		return r.multibulk(int(n))
	}
}

// multibulk reads n bulk-string arguments into the backing buffer, appending
// after whatever earlier commands ReadCommandKeep has pinned there.
func (r *Reader) multibulk(n int) ([][]byte, error) {
	base := len(r.spans)
	for i := 0; i < n; i++ {
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 || line[0] != TypeBulk {
			return nil, protoErrf("expected bulk string in command, got %q", line)
		}
		sz, ok := parseInt(line[1:])
		if !ok {
			return nil, protoErrf("invalid bulk length %q", line[1:])
		}
		// Validate the declared length BEFORE sizing anything from it: a
		// hostile "$99999999999" header must error, not allocate.
		if sz < 0 || sz > int64(r.lim.MaxBulkLen) {
			return nil, protoErrf("bulk length %d out of range [0, %d]", sz, r.lim.MaxBulkLen)
		}
		off := len(r.buf)
		need := int(sz) + 2 // payload + CRLF
		r.buf = grow(r.buf, need)
		if _, err := io.ReadFull(r.br, r.buf[off:off+need]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if r.buf[off+need-2] != '\r' || r.buf[off+need-1] != '\n' {
			return nil, protoErrf("bulk payload not CRLF-terminated")
		}
		r.buf = r.buf[:off+int(sz)] // drop the CRLF from the logical buffer
		r.spans = append(r.spans, span{off, int(sz)})
	}
	return r.argViews(base), nil
}

// inlineCommand splits a raw line into whitespace-separated arguments. The
// line aliases the bufio buffer, so payloads are copied into the backing
// buffer first (after any pinned commands).
func (r *Reader) inlineCommand(line []byte) ([][]byte, error) {
	if len(line) > r.lim.MaxInlineLen {
		return nil, protoErrf("inline command exceeds %d bytes", r.lim.MaxInlineLen)
	}
	base := len(r.spans)
	off := len(r.buf)
	r.buf = append(r.buf, line...)
	start := -1
	for i, c := range r.buf[off:] {
		if c == ' ' || c == '\t' {
			if start >= 0 {
				r.spans = append(r.spans, span{off + start, i - start})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		r.spans = append(r.spans, span{off + start, len(r.buf) - off - start})
	}
	if len(r.spans)-base > r.lim.MaxArrayLen {
		return nil, protoErrf("inline command has %d arguments (limit %d)", len(r.spans)-base, r.lim.MaxArrayLen)
	}
	return r.argViews(base), nil
}

// argViews materializes the spans recorded from base on — the current
// command's arguments — as slices into the (now stable) backing buffer.
func (r *Reader) argViews(base int) [][]byte {
	r.args = r.args[:0]
	for _, sp := range r.spans[base:] {
		r.args = append(r.args, r.buf[sp.off:sp.off+sp.n])
	}
	return r.args
}

// grow extends b by need bytes, reallocating at most geometrically.
func grow(b []byte, need int) []byte {
	if cap(b)-len(b) >= need {
		return b[:len(b)+need]
	}
	nb := make([]byte, len(b)+need, max(2*cap(b), len(b)+need))
	copy(nb, b)
	return nb
}

// ReadReply decodes one server reply (client side). Payloads are freshly
// allocated: the Reply stays valid across subsequent reads.
func (r *Reader) ReadReply() (Reply, error) {
	return r.readReply(0)
}

func (r *Reader) readReply(depth int) (Reply, error) {
	if depth > r.lim.MaxDepth {
		return Reply{}, protoErrf("reply nesting exceeds depth %d", r.lim.MaxDepth)
	}
	line, err := r.readLine()
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, protoErrf("empty reply line")
	}
	t, rest := line[0], line[1:]
	switch t {
	case TypeSimpleString, TypeError:
		return Reply{Type: t, Str: append([]byte(nil), rest...)}, nil
	case TypeInt:
		n, ok := parseInt(rest)
		if !ok {
			return Reply{}, protoErrf("invalid integer reply %q", rest)
		}
		return Reply{Type: t, Int: n}, nil
	case TypeBulk:
		sz, ok := parseInt(rest)
		if !ok {
			return Reply{}, protoErrf("invalid bulk length %q", rest)
		}
		if sz == -1 {
			return Reply{Type: t, Null: true}, nil
		}
		if sz < 0 || sz > int64(r.lim.MaxBulkLen) {
			return Reply{}, protoErrf("bulk length %d out of range [0, %d]", sz, r.lim.MaxBulkLen)
		}
		payload := make([]byte, sz+2)
		if _, err := io.ReadFull(r.br, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Reply{}, err
		}
		if payload[sz] != '\r' || payload[sz+1] != '\n' {
			return Reply{}, protoErrf("bulk payload not CRLF-terminated")
		}
		return Reply{Type: t, Str: payload[:sz]}, nil
	case TypeArray:
		n, ok := parseInt(rest)
		if !ok {
			return Reply{}, protoErrf("invalid array length %q", rest)
		}
		if n == -1 {
			return Reply{Type: t, Null: true}, nil
		}
		if n < 0 || n > int64(r.lim.MaxArrayLen) {
			return Reply{}, protoErrf("array length %d out of range [0, %d]", n, r.lim.MaxArrayLen)
		}
		rp := Reply{Type: t, Array: make([]Reply, 0, int(min(n, 64)))}
		for i := int64(0); i < n; i++ {
			el, err := r.readReply(depth + 1)
			if err != nil {
				return Reply{}, err
			}
			rp.Array = append(rp.Array, el)
		}
		return rp, nil
	default:
		return Reply{}, protoErrf("unexpected reply type byte %q", t)
	}
}
