package resp

import (
	"fmt"
	"net"
	"time"
)

// Client is a pipelined RESP client over one TCP connection.
//
// The pipelining contract mirrors the server's: Send queues commands into the
// write buffer, Flush puts the whole batch on the wire in one write, and
// Receive reads replies back in order. Do is the depth-1 convenience. The
// netbench harness drives servers at configurable depth with exactly this
// Send×N / Flush / Receive×N loop.
//
// Not safe for concurrent use; open one Client per goroutine (they are cheap:
// one connection, two buffers).
type Client struct {
	conn    net.Conn
	r       *Reader
	w       *Writer
	pending int
}

// Dial connects to a RESP server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (tests use net.Pipe-style pairs).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}
}

// Conn exposes the underlying connection (for deadlines in tests).
func (c *Client) Conn() net.Conn { return c.conn }

// SetDeadline bounds all future reads and writes.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Pending returns the number of commands sent (or queued) whose replies have
// not been received yet.
func (c *Client) Pending() int { return c.pending }

// Send queues one command without writing to the wire.
func (c *Client) Send(args ...[]byte) {
	c.w.Command(args...)
	c.pending++
}

// SendStrings queues one command given as strings.
func (c *Client) SendStrings(args ...string) {
	c.w.CommandStrings(args...)
	c.pending++
}

// Flush writes all queued commands to the wire.
func (c *Client) Flush() error { return c.w.Flush() }

// Receive reads the next in-order reply. It flushes queued commands first so
// a Send/Receive sequence cannot deadlock on an unflushed batch.
func (c *Client) Receive() (Reply, error) {
	if c.w.Buffered() > 0 {
		if err := c.w.Flush(); err != nil {
			return Reply{}, err
		}
	}
	if c.pending == 0 {
		return Reply{}, fmt.Errorf("resp: Receive with no pending command")
	}
	rp, err := c.r.ReadReply()
	if err != nil {
		return Reply{}, err
	}
	c.pending--
	return rp, nil
}

// Do sends one command and waits for its reply (depth-1 pipelining). A RESP
// error reply is returned as the Reply with a nil error: callers that only
// care about failure use Reply.Err.
func (c *Client) Do(args ...[]byte) (Reply, error) {
	c.Send(args...)
	return c.Receive()
}

// DoStrings is Do with string arguments.
func (c *Client) DoStrings(args ...string) (Reply, error) {
	c.SendStrings(args...)
	return c.Receive()
}

// Ping round-trips a PING and fails on anything but +PONG.
func (c *Client) Ping() error {
	rp, err := c.DoStrings("PING")
	if err != nil {
		return err
	}
	if err := rp.Err(); err != nil {
		return err
	}
	if string(rp.Str) != "PONG" {
		return fmt.Errorf("resp: unexpected PING reply %q", rp.Text())
	}
	return nil
}

// Get fetches a key; ok reports whether it exists.
func (c *Client) Get(key []byte) (val []byte, ok bool, err error) {
	rp, err := c.Do([]byte("GET"), key)
	if err != nil {
		return nil, false, err
	}
	if err := rp.Err(); err != nil {
		return nil, false, err
	}
	if rp.Null {
		return nil, false, nil
	}
	return rp.Str, true, nil
}

// Set stores a key.
func (c *Client) Set(key, val []byte) error {
	rp, err := c.Do([]byte("SET"), key, val)
	if err != nil {
		return err
	}
	return rp.Err()
}

// Del removes keys and returns how many existed.
func (c *Client) Del(keys ...[]byte) (int64, error) {
	args := make([][]byte, 0, len(keys)+1)
	args = append(args, []byte("DEL"))
	args = append(args, keys...)
	rp, err := c.Do(args...)
	if err != nil {
		return 0, err
	}
	if err := rp.Err(); err != nil {
		return 0, err
	}
	return rp.Int, nil
}

// Info fetches the server's INFO text.
func (c *Client) Info() (string, error) {
	rp, err := c.DoStrings("INFO")
	if err != nil {
		return "", err
	}
	if err := rp.Err(); err != nil {
		return "", err
	}
	return string(rp.Str), nil
}
