package resp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// TestParseIntParity checks ParseInt against strconv.ParseInt on every input
// class the RESP hot path can see: valid numbers across the full range, both
// boundary values and one-past-them, signs, and every malformed shape the
// strconv grammar rejects (strconv's base-10 64-bit grammar is the contract).
func TestParseIntParity(t *testing.T) {
	cases := []string{
		"", "+", "-", "0", "-0", "+0", "1", "-1", "+1",
		"007", "-007",
		"9223372036854775806", "9223372036854775807", // MaxInt64-1, MaxInt64
		"9223372036854775808", "9999999999999999999", // one past, way past
		"-9223372036854775807", "-9223372036854775808", // MinInt64+1, MinInt64
		"-9223372036854775809", "-9999999999999999999",
		"18446744073709551615", "18446744073709551616",
		" 1", "1 ", "1x", "x1", "1.5", "0x10", "1e3",
		"++1", "--1", "+-1", "-+1", "_1", "1_0",
		"\x001", "1\x00", "١٢٣", // non-ASCII digits must be rejected
	}
	for _, s := range cases {
		want, werr := strconv.ParseInt(s, 10, 64)
		got, ok := ParseInt([]byte(s))
		if ok != (werr == nil) {
			t.Errorf("ParseInt(%q) ok=%v, strconv err=%v", s, ok, werr)
			continue
		}
		if ok && got != want {
			t.Errorf("ParseInt(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

// TestParseUintParity does the same for ParseUint: digits only, no signs,
// full-uint64-range overflow detection.
func TestParseUintParity(t *testing.T) {
	cases := []string{
		"", "0", "1", "007",
		"18446744073709551614", "18446744073709551615", // MaxUint64-1, MaxUint64
		"18446744073709551616", "99999999999999999999", // one past, way past
		"+1", "-1", " 1", "1 ", "1x", "1.5",
	}
	for _, s := range cases {
		want, werr := strconv.ParseUint(s, 10, 64)
		got, ok := ParseUint([]byte(s))
		if ok != (werr == nil) {
			t.Errorf("ParseUint(%q) ok=%v, strconv err=%v", s, ok, werr)
			continue
		}
		if ok && got != want {
			t.Errorf("ParseUint(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

// TestParseIntRandomParity fuzzes the parity across random in-range values
// and random digit strings near the overflow boundary.
func TestParseIntRandomParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		var s string
		switch rng.Intn(3) {
		case 0:
			s = strconv.FormatInt(rng.Int63()-rng.Int63(), 10)
		case 1:
			s = strconv.FormatUint(rng.Uint64(), 10) // half overflow int64
		case 2:
			s = fmt.Sprintf("%c%019d", "+-"[rng.Intn(2)], rng.Int63())
		}
		want, werr := strconv.ParseInt(s, 10, 64)
		got, ok := ParseInt([]byte(s))
		if ok != (werr == nil) || (ok && got != want) {
			t.Fatalf("ParseInt(%q) = %d,%v; strconv = %d,%v", s, got, ok, want, werr)
		}
		uwant, uwerr := strconv.ParseUint(s, 10, 64)
		ugot, uok := ParseUint([]byte(s))
		if uok != (uwerr == nil) || (uok && ugot != uwant) {
			t.Fatalf("ParseUint(%q) = %d,%v; strconv = %d,%v", s, ugot, uok, uwant, uwerr)
		}
	}
}

// TestParseIntZeroAlloc is the point of the exercise: parsing allocates
// nothing.
func TestParseIntZeroAlloc(t *testing.T) {
	b := []byte("-9223372036854775808")
	u := []byte("18446744073709551615")
	if n := testing.AllocsPerRun(100, func() {
		ParseInt(b)
		ParseUint(u)
	}); n != 0 {
		t.Fatalf("ParseInt+ParseUint allocate %v per run, want 0", n)
	}
}

// TestWriterRetentionCap is the shrink-policy regression test: a single
// oversized reply may grow the buffer arbitrarily, but the capacity kept
// across Flushes must drop back to the initial size, and small steady-state
// replies must never re-grow it.
func TestWriterRetentionCap(t *testing.T) {
	w := NewWriter(bytes.NewBuffer(nil))
	w.SetMaxRetain(8 << 10)

	big := make([]byte, 64<<10)
	w.Bulk(big)
	if cap(w.buf) < len(big) {
		t.Fatalf("big reply did not grow the buffer: cap=%d", cap(w.buf))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) != writerInitSize {
		t.Fatalf("after oversized flush cap=%d, want shrink to %d", cap(w.buf), writerInitSize)
	}

	// Steady state: small replies never exceed the initial capacity, so the
	// buffer is stable — no shrink, no growth, flush after flush.
	for i := 0; i < 100; i++ {
		w.SimpleString("OK")
		w.Int(int64(i))
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if cap(w.buf) != writerInitSize {
			t.Fatalf("steady-state flush %d: cap=%d, want %d", i, cap(w.buf), writerInitSize)
		}
	}

	// Replies under the retain cap but over the initial size are kept: the
	// shrink only fires past maxRetain.
	w.Bulk(make([]byte, 6<<10))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) < 6<<10 {
		t.Fatalf("under-cap buffer was shrunk: cap=%d", cap(w.buf))
	}
}

// TestReaderKeepPinsPayloads exercises the keep-mode contract ReadCommandKeep
// documents: args decoded earlier in a batch stay intact — byte-for-byte —
// while later commands are decoded, until Release.
func TestReaderKeepPinsPayloads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 64
	for i := 0; i < n; i++ {
		w.CommandStrings("SET", fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var keys, vals [][]byte
	for i := 0; i < n; i++ {
		var args [][]byte
		var err error
		if i == 0 {
			args, err = r.ReadCommand()
		} else {
			args, err = r.ReadCommandKeep()
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(args) != 3 {
			t.Fatalf("command %d: %d args", i, len(args))
		}
		keys = append(keys, args[1])
		vals = append(vals, args[2])
	}
	// Every pinned arg — including those decoded 63 growths ago — must still
	// read back exactly.
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("key-%03d", i); string(keys[i]) != want {
			t.Fatalf("pinned key %d = %q, want %q", i, keys[i], want)
		}
		if want := fmt.Sprintf("val-%03d", i); string(vals[i]) != want {
			t.Fatalf("pinned val %d = %q, want %q", i, vals[i], want)
		}
	}
	r.Release()
	if len(r.buf) != 0 || len(r.spans) != 0 {
		t.Fatalf("Release left %d buf bytes, %d spans", len(r.buf), len(r.spans))
	}
}

// TestReaderReleaseShrinks checks the reader side of the retention policy: a
// batch of huge values must not pin its high-water mark past Release.
func TestReaderReleaseShrinks(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Command([]byte("SET"), []byte("k"), make([]byte, 2<<20))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	if cap(r.buf) < 2<<20 {
		t.Fatalf("huge value did not grow the buffer: cap=%d", cap(r.buf))
	}
	r.Release()
	if cap(r.buf) > readerMaxRetain {
		t.Fatalf("Release kept cap=%d, want <= %d", cap(r.buf), readerMaxRetain)
	}
}
