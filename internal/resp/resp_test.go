package resp

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

// TestCommandRoundTrip drives Writer.Command → Reader.ReadCommand over a set
// of golden commands, including empty and binary arguments.
func TestCommandRoundTrip(t *testing.T) {
	cmds := [][][]byte{
		{[]byte("PING")},
		{[]byte("GET"), []byte("key")},
		{[]byte("SET"), []byte("key"), []byte("value with spaces")},
		{[]byte("SET"), []byte("k"), []byte("")},
		{[]byte("SET"), []byte("bin"), {0, 1, 2, '\r', '\n', 0xff}},
		{[]byte("DEL"), []byte("a"), []byte("b"), []byte("c")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, cmd := range cmds {
		w.Command(cmd...)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range cmds {
		got, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("command %d: got %d args, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[j], want[j]) {
				t.Fatalf("command %d arg %d: got %q, want %q", i, j, got[j], want[j])
			}
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("after all commands: got %v, want EOF", err)
	}
}

// TestInlineCommands checks the telnet-style form, including skipped blank
// lines and mixed whitespace.
func TestInlineCommands(t *testing.T) {
	in := "\r\nPING\r\n  GET   some-key \r\n\t\r\nSET k v\r\n"
	r := NewReader(strings.NewReader(in))
	want := [][]string{{"PING"}, {"GET", "some-key"}, {"SET", "k", "v"}}
	for i, wc := range want {
		got, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
		if len(got) != len(wc) {
			t.Fatalf("command %d: got %q, want %q", i, got, wc)
		}
		for j := range wc {
			if string(got[j]) != wc[j] {
				t.Fatalf("command %d arg %d: got %q, want %q", i, j, got[j], wc[j])
			}
		}
	}
}

// TestReplyRoundTrip drives every Writer reply form through ReadReply.
func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.Bulk([]byte("hello"))
	w.BulkString("")
	w.Null()
	w.ArrayHeader(2)
	w.Int(1)
	w.Bulk([]byte("x"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	checks := []func(Reply){
		func(rp Reply) {
			if rp.Type != TypeSimpleString || string(rp.Str) != "OK" {
				t.Fatalf("simple: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeError || rp.Err() == nil || string(rp.Str) != "ERR boom" {
				t.Fatalf("error: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeInt || rp.Int != -42 {
				t.Fatalf("int: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeBulk || string(rp.Str) != "hello" {
				t.Fatalf("bulk: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeBulk || rp.Null || len(rp.Str) != 0 {
				t.Fatalf("empty bulk: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeBulk || !rp.Null {
				t.Fatalf("null bulk: %+v", rp)
			}
		},
		func(rp Reply) {
			if rp.Type != TypeArray || len(rp.Array) != 2 ||
				rp.Array[0].Int != 1 || string(rp.Array[1].Str) != "x" {
				t.Fatalf("array: %+v", rp)
			}
		},
	}
	for i, check := range checks {
		rp, err := r.ReadReply()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		check(rp)
	}
}

// TestErrorSanitized verifies CR/LF in error text cannot inject frames.
func TestErrorSanitized(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Error("ERR evil\r\n+OK")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	rp, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Type != TypeError || strings.ContainsAny(string(rp.Str), "\r\n") {
		t.Fatalf("sanitize failed: %+v", rp)
	}
	if _, err := r.ReadReply(); err != io.EOF {
		t.Fatalf("injected frame survived: err=%v", err)
	}
}

// TestMalformedFrames checks that hostile or truncated input errors with
// ErrProtocol (or an EOF variant) and never panics; huge declared lengths
// must be rejected before any allocation is sized from them.
func TestMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		proto bool // expect ErrProtocol specifically
	}{
		{"bad multibulk count", "*abc\r\n", true},
		{"negative multibulk", "*-1\r\n", true},
		{"huge multibulk", "*99999999\r\n", true},
		{"bad bulk header", "*1\r\n$abc\r\n", true},
		{"negative bulk", "*1\r\n$-5\r\n", true},
		{"huge bulk", "*1\r\n$99999999999\r\nx", true},
		{"not bulk in command", "*1\r\n:5\r\n", true},
		{"missing crlf", "*1\r\n$3\r\nabcXY", true},
		{"truncated payload", "*1\r\n$5\r\nab", false},
		{"truncated header", "*2\r\n$3\r\nabc\r\n", false},
		{"bare LF line", "PING\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReaderLimits(strings.NewReader(tc.in), Limits{MaxBulkLen: 1 << 16, MaxArrayLen: 64})
			_, err := r.ReadCommand()
			if err == nil {
				t.Fatalf("want error, got none")
			}
			if tc.proto && !errors.Is(err, ErrProtocol) {
				t.Fatalf("want ErrProtocol, got %v", err)
			}
		})
	}
}

// TestReplyDepthLimit bounds nested-array recursion.
func TestReplyDepthLimit(t *testing.T) {
	deep := strings.Repeat("*1\r\n", 100) + ":1\r\n"
	r := NewReader(strings.NewReader(deep))
	if _, err := r.ReadReply(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("want ErrProtocol for deep nesting, got %v", err)
	}
}

// TestArgsAliasReused documents the aliasing contract: arguments are only
// valid until the next ReadCommand.
func TestArgsAliasReused(t *testing.T) {
	in := "*2\r\n$3\r\nGET\r\n$1\r\na\r\n*2\r\n$3\r\nGET\r\n$1\r\nb\r\n"
	r := NewReader(strings.NewReader(in))
	first, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	key := first[1] // NOT copied
	if _, err := r.ReadCommand(); err != nil {
		t.Fatal(err)
	}
	if string(key) != "b" {
		t.Fatalf("expected alias reuse to overwrite; got %q", key)
	}
}

// TestClientPipeline runs the client against a scripted in-process peer over
// a real socket pair.
func TestClientPipeline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r := NewReader(conn)
		w := NewWriter(conn)
		for {
			cmd, err := r.ReadCommand()
			if err != nil {
				return
			}
			switch string(cmd[0]) {
			case "PING":
				w.SimpleString("PONG")
			case "ECHO":
				w.Bulk(cmd[1])
			default:
				w.Error("ERR unknown")
			}
			if r.Buffered() == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		}
	}()

	c, err := Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const depth = 16
	for i := 0; i < depth; i++ {
		c.SendStrings("ECHO", string(rune('a'+i)))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		rp, err := c.Receive()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if want := string(rune('a' + i)); string(rp.Str) != want {
			t.Fatalf("reply %d: got %q, want %q (out of order?)", i, rp.Str, want)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 0 {
		t.Fatalf("pending = %d after drain", c.Pending())
	}
}
