package resp

import (
	"io"
	"strconv"
)

// Writer encodes RESP frames into an internal buffer and writes them to the
// underlying stream only on Flush. The explicit flush is load-bearing for the
// server: a pipelined batch's replies — including the +OK acks of writes —
// stay buffered until the batch's group commit has made those writes durable,
// so an ack can never reach the wire before its data. It also means one
// syscall per batch instead of one per reply.
//
// Encode methods never fail (they only append to memory); all I/O errors
// surface from Flush. Not safe for concurrent use.
type Writer struct {
	dst       io.Writer
	buf       []byte
	maxRetain int
}

// writerMaxRetain is the default cap on the buffer kept across batches: a
// single huge reply burst does not pin its high-water mark forever.
const writerMaxRetain = 1 << 20

// writerInitSize is the buffer a fresh (or just-shrunk) Writer starts with.
const writerInitSize = 4096

// NewWriter creates a Writer over dst with the default retention cap.
func NewWriter(dst io.Writer) *Writer {
	return &Writer{dst: dst, buf: make([]byte, 0, writerInitSize), maxRetain: writerMaxRetain}
}

// SetMaxRetain bounds the buffer capacity kept across Flushes: after a flush
// that leaves more than n bytes of capacity, the buffer shrinks back to the
// initial size, so one oversized reply (a large SCAN WITHVALUES page, say)
// never pins its high-water mark for the connection's lifetime. n <= 0
// restores the default. The cap applies between batches, not within one — a
// single reply may still grow the buffer arbitrarily (subject to the
// protocol-level Limits).
func (w *Writer) SetMaxRetain(n int) {
	if n <= 0 {
		n = writerMaxRetain
	}
	w.maxRetain = n
}

var crlf = []byte{'\r', '\n'}

// SimpleString appends "+s".
func (w *Writer) SimpleString(s string) {
	w.buf = append(w.buf, TypeSimpleString)
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, crlf...)
}

// Error appends "-msg". CR/LF inside msg are flattened to spaces so an error
// text can never inject a frame boundary.
func (w *Writer) Error(msg string) {
	w.buf = append(w.buf, TypeError)
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.buf = append(w.buf, c)
	}
	w.buf = append(w.buf, crlf...)
}

// Int appends ":n".
func (w *Writer) Int(n int64) {
	w.buf = append(w.buf, TypeInt)
	w.buf = strconv.AppendInt(w.buf, n, 10)
	w.buf = append(w.buf, crlf...)
}

// Bulk appends "$len payload". A nil slice is written as an empty (not null)
// bulk string; use Null for absence.
func (w *Writer) Bulk(b []byte) {
	w.buf = append(w.buf, TypeBulk)
	w.buf = strconv.AppendInt(w.buf, int64(len(b)), 10)
	w.buf = append(w.buf, crlf...)
	w.buf = append(w.buf, b...)
	w.buf = append(w.buf, crlf...)
}

// BulkString appends a bulk string from a string.
func (w *Writer) BulkString(s string) {
	w.buf = append(w.buf, TypeBulk)
	w.buf = strconv.AppendInt(w.buf, int64(len(s)), 10)
	w.buf = append(w.buf, crlf...)
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, crlf...)
}

// Null appends the null bulk string "$-1".
func (w *Writer) Null() {
	w.buf = append(w.buf, TypeBulk, '-', '1')
	w.buf = append(w.buf, crlf...)
}

// ArrayHeader appends "*n"; the next n encoded values are its elements.
func (w *Writer) ArrayHeader(n int) {
	w.buf = append(w.buf, TypeArray)
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.buf = append(w.buf, crlf...)
}

// Command appends one client command as an array of bulk strings.
func (w *Writer) Command(args ...[]byte) {
	w.ArrayHeader(len(args))
	for _, a := range args {
		w.Bulk(a)
	}
}

// CommandStrings appends one client command from string arguments.
func (w *Writer) CommandStrings(args ...string) {
	w.ArrayHeader(len(args))
	for _, a := range args {
		w.BulkString(a)
	}
}

// Buffered returns the bytes encoded but not yet flushed.
func (w *Writer) Buffered() int { return len(w.buf) }

// Reset discards everything buffered since the last Flush. The server uses it
// when a group commit fails: the already-encoded +OK acks must not reach the
// wire for writes that never became durable.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Flush writes the buffered frames to the underlying stream.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.dst.Write(w.buf)
	if cap(w.buf) > w.maxRetain {
		w.buf = make([]byte, 0, writerInitSize)
	} else {
		w.buf = w.buf[:0]
	}
	return err
}
