// Package resp implements the Redis RESP2 wire protocol: the command and
// reply framing chameleon-server speaks on the wire, a zero-allocation-biased
// Reader/Writer pair, and a pipelined client.
//
// The serving layer exists so the store's concurrency properties are
// measurable end-to-end — a lock-free read path is only as good as the
// network front end that exposes it — and RESP2 is the protocol the porting
// studies of in-memory KV stores use for exactly this shape of evaluation
// (a Redis-compatible server in front of a persistent-memory engine). The
// subset here is enough for redis-cli and any RESP client library:
//
//	commands  arrays of bulk strings (*N then $len payload), plus the
//	          space-separated inline form for telnet-style debugging
//	replies   simple strings (+), errors (-), integers (:), bulk strings
//	          ($, with $-1 as null), and arrays (*, with *-1 as null)
//
// Parsing is defensive: every declared length is validated against Limits
// before any buffer is sized from it, so a hostile frame header can make the
// reader error but never over-allocate or panic (FuzzRESPParse holds it to
// that). The Reader reuses one backing buffer across commands and the Writer
// buffers all replies until an explicit Flush, which is what lets the server
// hold a pipelined batch's replies back until its group commit has made the
// writes durable.
package resp

import (
	"errors"
	"fmt"
)

// Reply type markers (the first byte of every RESP2 frame).
const (
	TypeSimpleString = '+'
	TypeError        = '-'
	TypeInt          = ':'
	TypeBulk         = '$'
	TypeArray        = '*'
)

// ErrProtocol is wrapped by every malformed-frame error. Transport errors
// (timeouts, EOF) pass through unwrapped, so a server can tell "the client
// spoke garbage" (reply with an error, then close) from "the client went
// away" (just close).
var ErrProtocol = errors.New("resp: protocol error")

// protoErrf builds an ErrProtocol-wrapped error.
func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// Limits bound what a single frame may declare. They are checked before any
// allocation is sized from wire input — the defense that keeps a "$9999999999"
// header from allocating ten gigabytes.
type Limits struct {
	// MaxBulkLen caps one bulk string's declared payload bytes.
	MaxBulkLen int
	// MaxArrayLen caps one array's declared element count (a command's
	// argument count on the server side).
	MaxArrayLen int
	// MaxInlineLen caps an inline command line's length.
	MaxInlineLen int
	// MaxDepth caps reply-array nesting.
	MaxDepth int
}

// DefaultLimits are generous for a KV workload (8 MiB values, 1024-element
// commands) while keeping hostile headers harmless.
func DefaultLimits() Limits {
	return Limits{
		MaxBulkLen:   8 << 20,
		MaxArrayLen:  1024,
		MaxInlineLen: 64 << 10,
		MaxDepth:     32,
	}
}

// withDefaults fills zero fields so a partially-specified Limits is usable.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxBulkLen <= 0 {
		l.MaxBulkLen = d.MaxBulkLen
	}
	if l.MaxArrayLen <= 0 {
		l.MaxArrayLen = d.MaxArrayLen
	}
	if l.MaxInlineLen <= 0 {
		l.MaxInlineLen = d.MaxInlineLen
	}
	if l.MaxDepth <= 0 {
		l.MaxDepth = d.MaxDepth
	}
	return l
}

// Reply is one decoded server reply. Str and Array are freshly allocated by
// ReadReply, so a Reply stays valid after the next read (clients collect
// pipelined replies into slices).
type Reply struct {
	Type  byte
	Null  bool    // $-1 or *-1
	Int   int64   // valid when Type == TypeInt
	Str   []byte  // simple string, error, or bulk payload
	Array []Reply // valid when Type == TypeArray
}

// Err returns the reply as a Go error when it is a RESP error, nil otherwise.
func (rp Reply) Err() error {
	if rp.Type == TypeError {
		return fmt.Errorf("resp: server replied: %s", rp.Str)
	}
	return nil
}

// Text renders the reply's payload for human consumption: the string form of
// whatever the reply carries.
func (rp Reply) Text() string {
	switch rp.Type {
	case TypeInt:
		return fmt.Sprintf("%d", rp.Int)
	case TypeArray:
		if rp.Null {
			return "(nil)"
		}
		return fmt.Sprintf("(%d elements)", len(rp.Array))
	default:
		if rp.Null {
			return "(nil)"
		}
		return string(rp.Str)
	}
}

// parseInt parses a decimal integer from a length/integer line without
// allocating. The magnitude is capped well below overflow: no legitimate
// frame header needs more than 2^52.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if len(b) == 1 {
			return 0, false
		}
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + int64(d)
		if n > 1<<52 {
			return 0, false
		}
	}
	if neg {
		n = -n
	}
	return n, true
}
