package resp

import "math"

// ParseInt parses a decimal int64 from b without allocating, accepting and
// rejecting exactly what strconv.ParseInt(string(b), 10, 64) does: an
// optional leading '+' or '-', then one or more ASCII digits, with full-range
// overflow detection (MinInt64 parses, one past it does not). The server's
// hot commands (INCRBY deltas, SCAN COUNT) parse their integer arguments
// through here so no string conversion ever happens on the command path.
func ParseInt(b []byte) (int64, bool) {
	neg := false
	i := 0
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	limit := uint64(math.MaxInt64) // magnitude bound: 2^63-1, or 2^63 negated
	if neg {
		limit++
	}
	var n uint64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n > (limit-uint64(d))/10 {
			return 0, false // n*10+d would pass the representable magnitude
		}
		n = n*10 + uint64(d)
	}
	if neg {
		return -int64(n), true // exact for n == 2^63 too: -int64(1<<63) == MinInt64
	}
	return int64(n), true
}

// ParseUint parses a decimal uint64 from b without allocating, matching
// strconv.ParseUint(string(b), 10, 64): digits only (no sign), full-range
// overflow detection. SCAN cursors — raw 64-bit hashes — parse through here.
func ParseUint(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		d := c - '0'
		if d > 9 {
			return 0, false
		}
		if n > (math.MaxUint64-uint64(d))/10 {
			return 0, false
		}
		n = n*10 + uint64(d)
	}
	return n, true
}
