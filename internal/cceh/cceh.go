// Package cceh implements CCEH (Cacheline-Conscious Extendible Hashing,
// Nam et al., FAST'19), the persistent hash table behind the paper's
// Pmem-Hash baseline. The directory lives in DRAM with a persisted copy; the
// segments live in persistent memory and are updated in place with small
// store+fence writes — the access pattern whose 256 B read-modify-write
// amplification makes Pmem-Hash the slowest writer in the evaluation.
package cceh

import (
	"encoding/binary"
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/hashtable"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
)

const (
	// SegmentSlots is the number of 16-byte slots per segment (16 KB
	// segments, CCEH's default kilobyte-scale segment size).
	SegmentSlots = 1024
	// probeWindow bounds linear probing within a segment, CCEH's
	// displacement limit. A larger window lets segments run at the high
	// load factors a billion-key CCEH reaches before splitting, which is
	// what gives Pmem-Hash its multi-line probe sequences (Figure 13's
	// latency gap to ChameleonDB's single-probe last level).
	probeWindow = 64
	slotSize    = hashtable.SlotSize
	segBytes    = SegmentSlots * slotSize
)

type segment struct {
	off        int64
	localDepth uint8
}

// Table is a CCEH hash table mapping 64-bit key hashes to references.
// Not safe for concurrent use; the Pmem-Hash store serializes per stripe.
type Table struct {
	arena       *pmem.Arena
	dir         []*segment
	globalDepth uint8

	inserts int64
	splits  int64
}

// New creates a table with 2^initialDepth segments.
func New(arena *pmem.Arena, initialDepth uint8) (*Table, error) {
	t := &Table{arena: arena, globalDepth: initialDepth}
	n := 1 << initialDepth
	t.dir = make([]*segment, n)
	for i := 0; i < n; i++ {
		off, err := arena.Alloc(segBytes)
		if err != nil {
			return nil, err
		}
		t.dir[i] = &segment{off: off, localDepth: initialDepth}
	}
	return t, nil
}

// dirIndex selects the directory entry: the top globalDepth bits of the hash.
func (t *Table) dirIndex(h uint64) int {
	if t.globalDepth == 0 {
		return 0
	}
	return int(h >> (64 - t.globalDepth))
}

func (t *Table) slotOff(seg *segment, idx int) int64 {
	return seg.off + int64(idx)*slotSize
}

func (t *Table) loadSlot(seg *segment, idx int) hashtable.Slot {
	b := t.arena.Bytes(t.slotOff(seg, idx), slotSize)
	return hashtable.Slot{
		Hash: binary.LittleEndian.Uint64(b[0:8]),
		Ref:  binary.LittleEndian.Uint64(b[8:16]),
	}
}

// storeSlot persists one 16-byte slot in place: the small random pmem write
// with 16x media amplification that defines this baseline.
func (t *Table) storeSlot(c *simclock.Clock, seg *segment, idx int, s hashtable.Slot) {
	var b [slotSize]byte
	binary.LittleEndian.PutUint64(b[0:8], s.Hash)
	binary.LittleEndian.PutUint64(b[8:16], s.Ref)
	t.arena.StorePersist(c, t.slotOff(seg, idx), b[:])
}

// Insert adds or updates the entry for h. Segment splits are handled
// transparently (and charged: read old segment, write two new ones, persist
// the directory).
func (t *Table) Insert(c *simclock.Clock, h uint64, ref uint64) error {
	for attempt := 0; attempt < 64; attempt++ {
		c.Advance(device.CostDRAMRandAccess) // directory lookup
		seg := t.dir[t.dirIndex(h)]
		base := int(h % SegmentSlots)
		lastLine := -1
		for i := 0; i < probeWindow; i++ {
			idx := (base + i) % SegmentSlots
			if line := idx / (256 / slotSize); line != lastLine {
				t.arena.ReadRandom(c, seg.off+int64(line)*256, 256)
				lastLine = line
			} else {
				c.Advance(device.CostSlotProbe)
			}
			s := t.loadSlot(seg, idx)
			if s.Ref == 0 || s.Hash == h {
				t.storeSlot(c, seg, idx, hashtable.Slot{Hash: h, Ref: ref})
				t.inserts++
				return nil
			}
		}
		if err := t.split(c, seg); err != nil {
			return err
		}
	}
	return fmt.Errorf("cceh: insert failed after repeated splits (pathological hash distribution)")
}

// split divides seg into two segments of localDepth+1, doubling the
// directory if needed.
func (t *Table) split(c *simclock.Clock, seg *segment) error {
	t.splits++
	if seg.localDepth == t.globalDepth {
		if t.globalDepth >= 48 {
			return fmt.Errorf("cceh: directory depth limit reached")
		}
		nd := make([]*segment, len(t.dir)*2)
		for i, s := range t.dir {
			nd[2*i], nd[2*i+1] = s, s
		}
		t.dir = nd
		t.globalDepth++
		// Persisting the directory copy: one sequential write.
		dirOff, err := t.arena.Alloc(int64(len(t.dir)) * 8)
		if err != nil {
			return err
		}
		t.arena.Persist(c, dirOff, int64(len(t.dir))*8)
		t.arena.Free(dirOff, int64(len(t.dir))*8)
	}
	newDepth := seg.localDepth + 1
	offA, err := t.arena.Alloc(segBytes)
	if err != nil {
		return err
	}
	offB, err := t.arena.Alloc(segBytes)
	if err != nil {
		return err
	}
	segA := &segment{off: offA, localDepth: newDepth}
	segB := &segment{off: offB, localDepth: newDepth}

	// Read the old segment (sequential), redistribute by the new depth bit.
	t.arena.ReadSeq(c, seg.off, segBytes)
	for i := 0; i < SegmentSlots; i++ {
		s := t.loadSlot(seg, i)
		if s.Ref == 0 {
			continue
		}
		dst := segA
		if s.Hash>>(64-newDepth)&1 == 1 {
			dst = segB
		}
		base := int(s.Hash % SegmentSlots)
		for j := 0; j < SegmentSlots; j++ {
			idx := (base + j) % SegmentSlots
			cur := t.loadSlot(dst, idx)
			if cur.Ref == 0 {
				b := t.arena.Bytes(t.slotOff(dst, idx), slotSize)
				binary.LittleEndian.PutUint64(b[0:8], s.Hash)
				binary.LittleEndian.PutUint64(b[8:16], s.Ref)
				break
			}
		}
	}
	// Persist both new segments as bulk writes.
	t.arena.Persist(c, offA, segBytes)
	t.arena.Persist(c, offB, segBytes)

	// Update every directory entry that pointed at the old segment. The
	// entries form one contiguous, aligned group of `stride` slots, so the
	// first half maps to the 0-bit child and the second half to the 1-bit.
	stride := 1 << (t.globalDepth - seg.localDepth)
	for i := range t.dir {
		if t.dir[i] == seg {
			// The top newDepth-th bit of the hash range decides A vs B:
			// within the group of stride entries, the first half gets A.
			if i%stride < stride/2 {
				t.dir[i] = segA
			} else {
				t.dir[i] = segB
			}
		}
	}
	t.arena.Free(seg.off, segBytes)
	return nil
}

// Get returns the reference for h.
func (t *Table) Get(c *simclock.Clock, h uint64) (uint64, bool) {
	c.Advance(device.CostDRAMRandAccess) // directory lookup
	seg := t.dir[t.dirIndex(h)]
	base := int(h % SegmentSlots)
	lastLine := -1
	for i := 0; i < probeWindow; i++ {
		idx := (base + i) % SegmentSlots
		if line := idx / (256 / slotSize); line != lastLine {
			t.arena.ReadRandom(c, seg.off+int64(line)*256, 256)
			lastLine = line
		} else {
			c.Advance(device.CostSlotProbe)
		}
		s := t.loadSlot(seg, idx)
		if s.Ref == 0 {
			return 0, false
		}
		if s.Hash == h {
			if s.Tombstone() {
				return 0, false
			}
			return s.Ref, true
		}
	}
	return 0, false
}

// Delete marks h deleted in place (one small persisted write).
func (t *Table) Delete(c *simclock.Clock, h uint64) bool {
	c.Advance(device.CostDRAMRandAccess)
	seg := t.dir[t.dirIndex(h)]
	base := int(h % SegmentSlots)
	for i := 0; i < probeWindow; i++ {
		idx := (base + i) % SegmentSlots
		s := t.loadSlot(seg, idx)
		if s.Ref == 0 {
			return false
		}
		if s.Hash == h {
			t.storeSlot(c, seg, idx, hashtable.Slot{Hash: h, Ref: hashtable.TombstoneBit})
			return true
		}
	}
	return false
}

// DirSize returns the number of directory entries (DRAM footprint driver).
func (t *Table) DirSize() int { return len(t.dir) }

// Splits returns the number of segment splits performed.
func (t *Table) Splits() int64 { return t.splits }

// DRAMFootprint returns the DRAM bytes used by the directory and per-segment
// bookkeeping CCEH keeps volatile.
func (t *Table) DRAMFootprint() int64 {
	return int64(len(t.dir))*8 + int64(len(t.dir))*16
}

// Iterate visits every live entry (used only by tests and recovery checks).
func (t *Table) Iterate(fn func(h, ref uint64) bool) {
	seen := make(map[*segment]bool)
	for _, seg := range t.dir {
		if seen[seg] {
			continue
		}
		seen[seg] = true
		for i := 0; i < SegmentSlots; i++ {
			s := t.loadSlot(seg, i)
			if s.Ref != 0 && !s.Tombstone() {
				if !fn(s.Hash, s.Ref) {
					return
				}
			}
		}
	}
}
