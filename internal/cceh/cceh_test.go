package cceh

import (
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
	"chameleondb/internal/xhash"
)

func newTable(t *testing.T, depth uint8, arenaBytes int64) (*Table, *pmem.Arena) {
	t.Helper()
	a := pmem.NewArena(device.New(device.OptanePmem), arenaBytes)
	tb, err := New(a, depth)
	if err != nil {
		t.Fatal(err)
	}
	return tb, a
}

func TestInsertGet(t *testing.T) {
	tb, _ := newTable(t, 1, 1<<22)
	c := simclock.New(0)
	for i := uint64(0); i < 500; i++ {
		if err := tb.Insert(c, xhash.Uint64(i), i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		ref, ok := tb.Get(c, xhash.Uint64(i))
		if !ok || ref != i+1 {
			t.Fatalf("get %d = %d, %v", i, ref, ok)
		}
	}
	if _, ok := tb.Get(c, xhash.Uint64(99999)); ok {
		t.Fatal("found absent key")
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb, a := newTable(t, 1, 1<<22)
	c := simclock.New(0)
	h := xhash.Uint64(7)
	tb.Insert(c, h, 1)
	splitsBefore := tb.Splits()
	wBefore := a.Device().Stats().MediaBytesWritten
	tb.Insert(c, h, 2)
	if tb.Splits() != splitsBefore {
		t.Fatal("update caused a split")
	}
	// One in-place 16 B slot update = one 256 B media write.
	if d := a.Device().Stats().MediaBytesWritten - wBefore; d != 256 {
		t.Fatalf("update media write = %d, want 256", d)
	}
	ref, _ := tb.Get(c, h)
	if ref != 2 {
		t.Fatal("update not visible")
	}
}

func TestSplitsGrowDirectory(t *testing.T) {
	tb, _ := newTable(t, 0, 1<<26)
	c := simclock.New(0)
	const n = 20000 // far beyond one segment: forces splits + dir doubling
	for i := uint64(0); i < n; i++ {
		if err := tb.Insert(c, xhash.Uint64(i), i+1); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Splits() == 0 || tb.DirSize() <= 1 {
		t.Fatalf("expected splits and directory growth: splits=%d dir=%d", tb.Splits(), tb.DirSize())
	}
	for i := uint64(0); i < n; i++ {
		ref, ok := tb.Get(c, xhash.Uint64(i))
		if !ok || ref != i+1 {
			t.Fatalf("entry %d lost after splits", i)
		}
	}
}

func TestDelete(t *testing.T) {
	tb, _ := newTable(t, 1, 1<<22)
	c := simclock.New(0)
	h := xhash.Uint64(42)
	tb.Insert(c, h, 5)
	if !tb.Delete(c, h) {
		t.Fatal("delete failed")
	}
	if _, ok := tb.Get(c, h); ok {
		t.Fatal("deleted key still readable")
	}
	if tb.Delete(c, xhash.Uint64(43)) {
		t.Fatal("delete of absent key succeeded")
	}
	// Reinsert reuses the tombstoned slot.
	tb.Insert(c, h, 9)
	if ref, ok := tb.Get(c, h); !ok || ref != 9 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestInsertWriteAmplification(t *testing.T) {
	// CCEH's defining property under the 256 B unit: small in-place inserts
	// amplify ~16x until splits add bulk writes.
	tb, a := newTable(t, 4, 1<<24)
	c := simclock.New(0)
	a.Device().ResetStats()
	for i := uint64(0); i < 1000; i++ {
		tb.Insert(c, xhash.Uint64(i), i+1)
	}
	wa := a.Device().Stats().WriteAmplification()
	if wa < 8 {
		t.Fatalf("CCEH insert WA = %v, expected large (~16)", wa)
	}
}

func TestIterate(t *testing.T) {
	tb, _ := newTable(t, 1, 1<<22)
	c := simclock.New(0)
	for i := uint64(0); i < 100; i++ {
		tb.Insert(c, xhash.Uint64(i), i+1)
	}
	tb.Delete(c, xhash.Uint64(0))
	n := 0
	tb.Iterate(func(h, ref uint64) bool { n++; return true })
	if n != 99 {
		t.Fatalf("iterated %d live entries, want 99", n)
	}
}

func TestFootprint(t *testing.T) {
	tb, _ := newTable(t, 2, 1<<22)
	if tb.DRAMFootprint() <= 0 {
		t.Fatal("footprint should be positive")
	}
}
