package pmem

import "sync"

// Slab is a small-object sub-allocator over an Arena. Arena allocations are
// access-unit aligned (256 B minimum), which would waste enormous space on
// structures like skiplist nodes; Slab carves unaligned objects out of large
// arena chunks instead, exactly as a real pmem allocator does — and exactly
// because objects straddle 256 B units, small persisted writes to them incur
// the read-modify-write amplification the paper's Challenge 1 describes.
type Slab struct {
	arena     *Arena
	chunkSize int64

	mu   sync.Mutex
	cur  int64 // current chunk offset, 0 if none
	used int64
}

// NewSlab creates a slab allocator drawing chunkSize-byte chunks from arena.
func NewSlab(arena *Arena, chunkSize int64) *Slab {
	if chunkSize < 4096 {
		chunkSize = 4096
	}
	return &Slab{arena: arena, chunkSize: chunkSize}
}

// Alloc reserves size bytes (8-byte aligned, not unit aligned) and returns
// the absolute arena offset. Slab allocations are never freed individually;
// log-structured stores reclaim space wholesale, which is out of scope here.
func (s *Slab) Alloc(size int64) (int64, error) {
	size = (size + 7) &^ 7
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == 0 || s.used+size > s.chunkSize {
		n := s.chunkSize
		if size > n {
			n = size
		}
		off, err := s.arena.Alloc(n)
		if err != nil {
			return 0, err
		}
		s.cur, s.used = off, 0
	}
	off := s.cur + s.used
	s.used += size
	return off, nil
}
