package pmem

import (
	"bytes"
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

func newTestArena(t *testing.T) *Arena {
	t.Helper()
	return NewArena(device.New(device.OptanePmem), 1<<20)
}

func TestAllocAlignmentAndReuse(t *testing.T) {
	a := newTestArena(t)
	off1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off1 == 0 {
		t.Fatal("offset 0 must be reserved as nil")
	}
	if off1%256 != 0 {
		t.Fatalf("allocation not unit-aligned: %d", off1)
	}
	off2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off1+256 {
		t.Fatalf("second alloc = %d, want %d (100 B rounds to one unit)", off2, off1+256)
	}
	a.Free(off1, 100)
	off3, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off3 != off1 {
		t.Fatalf("freed block not reused: got %d, want %d", off3, off1)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 1024)
	if _, err := a.Alloc(2048); err == nil {
		t.Fatal("expected out-of-space error")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("expected error for zero-size alloc")
	}
}

func TestFreeZeroesBlock(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, []byte("sensitive"))
	a.Free(off, 256)
	off2, _ := a.Alloc(256)
	if off2 != off {
		t.Fatalf("expected reuse of freed block")
	}
	if !bytes.Equal(a.Bytes(off2, 9), make([]byte, 9)) {
		t.Fatal("freed block was not zeroed")
	}
}

func TestPersistSurvivesCrash(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(512)
	a.Store(off, []byte("durable!"))
	a.Persist(c, off, 8)
	a.Store(off+256, []byte("volatile"))
	// No persist of the second write.
	a.Crash()
	if got := string(a.Bytes(off, 8)); got != "durable!" {
		t.Fatalf("persisted data lost on crash: %q", got)
	}
	if got := a.Bytes(off+256, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("unpersisted data survived crash: %q", got)
	}
}

func TestCrashIsRepeatable(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, []byte("v1"))
	a.Crash()
	a.Store(off, []byte("v2"))
	a.Crash() // second crash discards v2 again
	if got := string(a.Bytes(off, 2)); got != "v1" {
		t.Fatalf("after second crash got %q, want v1", got)
	}
}

func TestStorePersistChargesDevice(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, make([]byte, 16))
	s := a.Stats()
	if s.LogicalBytesWritten != 16 || s.MediaBytesWritten != 256 {
		t.Fatalf("unexpected accounting: %+v", s)
	}
	if c.Now() == 0 {
		t.Fatal("persist did not charge time")
	}
}

func TestReadRandomReturnsData(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, []byte("hello"))
	before := c.Now()
	got := a.ReadRandom(c, off, 5)
	if string(got) != "hello" {
		t.Fatalf("ReadRandom = %q", got)
	}
	if c.Now() <= before {
		t.Fatal("read did not charge time")
	}
}

func TestReadSeqReturnsData(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(1024)
	a.StorePersist(c, off, bytes.Repeat([]byte{0xAB}, 1024))
	got := a.ReadSeq(c, off, 1024)
	if len(got) != 1024 || got[500] != 0xAB {
		t.Fatal("ReadSeq returned wrong data")
	}
}

func TestInUseHighWater(t *testing.T) {
	a := newTestArena(t)
	before := a.InUse()
	if _, err := a.Alloc(256); err != nil {
		t.Fatal(err)
	}
	if a.InUse() != before+256 {
		t.Fatalf("InUse = %d, want %d", a.InUse(), before+256)
	}
	if a.Capacity() != 1<<20 {
		t.Fatalf("Capacity = %d", a.Capacity())
	}
}
