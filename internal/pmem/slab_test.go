package pmem

import (
	"testing"

	"chameleondb/internal/device"
)

func TestSlabCarvesUnaligned(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 1<<20)
	s := NewSlab(a, 4096)
	off1, err := s.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := s.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off1+24 {
		t.Fatalf("slab allocations not contiguous: %d then %d", off1, off2)
	}
}

func TestSlabAlignment(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 1<<20)
	s := NewSlab(a, 4096)
	off, err := s.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := s.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	if off%8 != 0 || off2 != off+8 {
		t.Fatalf("slab must 8-byte align: %d, %d", off, off2)
	}
}

func TestSlabNewChunkOnOverflow(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 1<<20)
	s := NewSlab(a, 4096)
	if _, err := s.Alloc(4000); err != nil {
		t.Fatal(err)
	}
	off, err := s.Alloc(200) // does not fit in chunk remainder
	if err != nil {
		t.Fatal(err)
	}
	if off%4096 != 0 && off%256 != 0 {
		t.Fatalf("overflow allocation should start a fresh chunk, got %d", off)
	}
}

func TestSlabBigAllocation(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 1<<20)
	s := NewSlab(a, 4096)
	if _, err := s.Alloc(100000); err != nil {
		t.Fatal(err)
	}
}

func TestSlabExhaustsArena(t *testing.T) {
	a := NewArena(device.New(device.OptanePmem), 8192)
	s := NewSlab(a, 4096)
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = s.Alloc(1024)
	}
	if err == nil {
		t.Fatal("expected arena exhaustion")
	}
}
