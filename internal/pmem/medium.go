package pmem

// Medium is the persistence backend behind the arena's durable image: where
// bytes go when they are persisted, and where they come back from after a
// real process restart.
//
// The arena always maintains its in-memory durable image (the simulated
// media), so the virtual-time device model, Crash(), and recovery code are
// identical on every backend. A Medium, when installed, is a write-through
// mirror of that image onto real storage: every Persist that lands in the
// durable image is also written to the medium, and sync persists are made
// durable (fdatasync) before the call returns — the file-backed equivalent of
// the clwb+sfence boundary the simulated device models. The nil Medium is the
// default simulated backend: the durable image lives only in heap memory.
//
// Implementations must be safe for concurrent use; the arena may call
// WriteDurable from multiple sessions and ZeroDurable from background
// reclamation at the same time (always for disjoint ranges).
type Medium interface {
	// WriteDurable mirrors data (the bytes just copied into the durable image
	// at [off, off+len(data))) onto the backing store. When sync is true the
	// write is a durability point and must reach stable storage before the
	// call returns. sync=false writes (torn persists after a simulated power
	// failure, deferred zeroing) may linger in host caches.
	WriteDurable(off int64, data []byte, sync bool) error

	// ZeroDurable zeroes [off, off+size) on the backing store. The arena
	// calls it when a block is freed. The zeroes need not reach stable
	// storage before the call returns, but the implementation must make them
	// durable no later than the next synced WriteMeta: host metadata is what
	// can make a freed-then-reused region reachable again (the wlog segment
	// directory persists from reserveChunk before any entry is written), and
	// a power cut must never preserve such a record while rolling back the
	// zeroes — the region's stale bytes would replay as live entries.
	ZeroDurable(off, size int64) error

	// WriteMeta replaces the engine's host-metadata record (the wlog segment
	// directory and allocator marks; see core's hostState). tear < 0 writes
	// the full record and syncs it; otherwise only the first tear payload
	// bytes of the freshly framed record reach the store and nothing is
	// synced — the torn-write image of a metadata persist interrupted by
	// power failure, which the record checksum must detect on reopen.
	WriteMeta(payload []byte, tear int64) error

	// Close flushes all host-cached state (manifest record, directory
	// entries) to stable storage and releases the backing resources.
	Close() error
}
