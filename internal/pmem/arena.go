// Package pmem implements the simulated Optane persistent memory arena used
// by every store in this repository.
//
// The arena keeps two images of the memory: a volatile image, which models
// the CPU cache hierarchy plus the device and is what running code reads and
// writes, and a durable image, which models the persistent media behind the
// write pending queue. Writes land in the volatile image immediately;
// Persist (clwb+sfence) and PersistNT (ntstore+sfence) copy byte ranges into
// the durable image and charge the device model for the media traffic.
// Crash discards the volatile image, so anything not persisted is lost —
// exactly the failure semantics App Direct mode exposes — and Recover-time
// code sees only what was fenced.
package pmem

import (
	"errors"
	"fmt"
	"sync"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

// ErrOutOfSpace is returned by Alloc when the arena is exhausted.
var ErrOutOfSpace = errors.New("pmem: arena out of space")

// Arena is a byte-addressable persistent memory region backed by the device
// timing model. Allocation is thread-safe; data access into disjoint
// allocations is safe without locking, as with real memory.
type Arena struct {
	dev *device.Device

	mu       sync.Mutex
	volatile []byte
	durable  []byte
	next     int64
	free     map[int64][]int64 // size class -> free offsets

	crashMu sync.RWMutex // held for writing only during Crash
}

// NewArena creates an arena of the given capacity in bytes on device dev.
// Offset 0 is reserved (a zero offset means "nil" throughout the codebase),
// so the first allocation starts at the device access unit boundary.
func NewArena(dev *device.Device, capacity int64) *Arena {
	a := &Arena{
		dev:      dev,
		volatile: make([]byte, capacity),
		durable:  make([]byte, capacity),
		next:     dev.Profile().AccessUnit,
		free:     make(map[int64][]int64),
	}
	return a
}

// Device returns the backing device model.
func (a *Arena) Device() *device.Device { return a.dev }

// Capacity returns the arena size in bytes.
func (a *Arena) Capacity() int64 { return int64(len(a.volatile)) }

// InUse returns the high-water allocation mark in bytes.
func (a *Arena) InUse() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// Alloc reserves size bytes aligned to the device access unit and returns the
// offset. Freed blocks of the same size class are reused. Allocation itself
// is not charged time: real pmem allocators amortize this into the writes.
func (a *Arena) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("pmem: invalid alloc size %d", size)
	}
	unit := a.dev.Profile().AccessUnit
	size = (size + unit - 1) / unit * unit
	if p := a.dev.FaultPlan(); p != nil {
		if err := p.AllocError(); err != nil {
			return 0, err
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if list := a.free[size]; len(list) > 0 {
		off := list[len(list)-1]
		a.free[size] = list[:len(list)-1]
		return off, nil
	}
	if a.next+size > int64(len(a.volatile)) {
		return 0, fmt.Errorf("%w: need %d bytes, %d available", ErrOutOfSpace, size, int64(len(a.volatile))-a.next)
	}
	off := a.next
	a.next += size
	return off, nil
}

// Free returns an allocation of the given size to the arena's free list. The
// contents are zeroed in both images so stale data cannot leak into the next
// user of the block (the durable zeroing is not charged: real systems defer
// it into the next table write, which we charge in full).
func (a *Arena) Free(off, size int64) {
	if off == 0 || size <= 0 {
		return
	}
	unit := a.dev.Profile().AccessUnit
	size = (size + unit - 1) / unit * unit
	clear(a.volatile[off : off+size])
	// After a simulated power failure the process is as good as dead: its
	// deferred durable zeroing never happens, and the durable image must stay
	// exactly as the crash left it for recovery to observe.
	if !a.dev.PowerFailed() {
		clear(a.durable[off : off+size])
	}
	a.mu.Lock()
	a.free[size] = append(a.free[size], off)
	a.mu.Unlock()
}

// Bytes returns the volatile view of [off, off+size). Callers that model
// timed access must charge the device separately (ReadRandom/ReadSeq); this
// accessor exists so index structures can manipulate their backing memory.
func (a *Arena) Bytes(off, size int64) []byte {
	return a.volatile[off : off+size]
}

// ReadRandom charges one random device read and returns the volatile view of
// the range (identical to the durable view for persisted data).
func (a *Arena) ReadRandom(c *simclock.Clock, off, size int64) []byte {
	a.dev.ReadRandom(c, off, size)
	return a.volatile[off : off+size]
}

// ReadSeq charges a streaming read and returns the volatile view.
func (a *Arena) ReadSeq(c *simclock.Clock, off, size int64) []byte {
	a.dev.ReadSeq(c, off, size)
	return a.volatile[off : off+size]
}

// Persist flushes [off, off+size) from the volatile image to the durable
// image (clwb + sfence). Partial-unit writes incur read-modify-write
// charges in the device model.
func (a *Arena) Persist(c *simclock.Clock, off, size int64) {
	if size <= 0 {
		return
	}
	if p := a.dev.FaultPlan(); p != nil {
		keep, normal := p.NotePersist(a.dev.Profile().AccessUnit, off, size)
		if !normal {
			// The power failed on (or before) this persist: only the first
			// keep bytes — a whole-line prefix of the touched range — reach
			// media, and the device is not charged (the timeline ends here).
			if keep > 0 {
				a.crashMu.RLock()
				copy(a.durable[off:off+keep], a.volatile[off:off+keep])
				a.crashMu.RUnlock()
			}
			return
		}
	}
	a.crashMu.RLock()
	copy(a.durable[off:off+size], a.volatile[off:off+size])
	a.crashMu.RUnlock()
	a.dev.WritePersist(c, off, size)
}

// Store writes data into the volatile image without persisting it. It models
// a plain cached store: free in time (the cost is charged when the line is
// eventually persisted), lost on crash if never fenced.
func (a *Arena) Store(off int64, data []byte) {
	copy(a.volatile[off:off+int64(len(data))], data)
}

// StorePersist writes data and immediately persists it — the common
// store+clwb+sfence (or ntstore+sfence) sequence for small in-place updates,
// the access pattern that makes Pmem-Hash slow in the paper.
func (a *Arena) StorePersist(c *simclock.Clock, off int64, data []byte) {
	a.Store(off, data)
	a.Persist(c, off, int64(len(data)))
}

// Crash simulates a power failure: the volatile image is replaced by the
// durable image, discarding every write that was not persisted. The free list
// is discarded too — it is host allocator state, and after a mid-operation
// crash it can hold blocks the durable metadata still references (a table
// released after a manifest persist that never committed); reusing those
// would overwrite live recovered data. The post-recovery allocator instead
// carves fresh space, modeling an allocator that rebuilds its metadata
// conservatively. The caller must guarantee no concurrent access (stores stop
// their workers first).
func (a *Arena) Crash() {
	a.crashMu.Lock()
	copy(a.volatile, a.durable)
	a.crashMu.Unlock()
	a.mu.Lock()
	a.free = make(map[int64][]int64)
	a.mu.Unlock()
}

// TamperDurable overwrites bytes of the durable image directly, bypassing the
// volatile image and the device model. It exists for fault-injection tests
// (fuzzing recovery with corrupted durable state) and must not be used by
// store code.
func (a *Arena) TamperDurable(off int64, data []byte) {
	if off < 0 || off+int64(len(data)) > int64(len(a.durable)) {
		return
	}
	a.crashMu.Lock()
	copy(a.durable[off:off+int64(len(data))], data)
	a.crashMu.Unlock()
}

// Stats returns the backing device's media counters.
func (a *Arena) Stats() device.Stats { return a.dev.Stats() }
