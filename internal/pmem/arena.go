// Package pmem implements the simulated Optane persistent memory arena used
// by every store in this repository.
//
// The arena keeps two images of the memory: a volatile image, which models
// the CPU cache hierarchy plus the device and is what running code reads and
// writes, and a durable image, which models the persistent media behind the
// write pending queue. Writes land in the volatile image immediately;
// Persist (clwb+sfence) and PersistNT (ntstore+sfence) copy byte ranges into
// the durable image and charge the device model for the media traffic.
// Crash discards the volatile image, so anything not persisted is lost —
// exactly the failure semantics App Direct mode exposes — and Recover-time
// code sees only what was fenced.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

// ErrOutOfSpace is returned by Alloc when the arena is exhausted.
var ErrOutOfSpace = errors.New("pmem: arena out of space")

// Arena is a byte-addressable persistent memory region backed by the device
// timing model. Allocation is thread-safe; data access into disjoint
// allocations is safe without locking, as with real memory.
type Arena struct {
	dev *device.Device

	// med, when non-nil, is the real persistence backend mirrored behind the
	// in-memory durable image (see Medium). The simulated default is nil.
	med Medium
	// medErr latches the first Medium I/O error: once a persist has failed to
	// reach stable storage the arena can no longer honour durability, so the
	// store fails stop (core checks MediumErr on the session paths).
	medErr atomic.Pointer[error]

	mu       sync.Mutex
	volatile []byte
	durable  []byte
	next     int64
	free     map[int64][]int64 // size class -> free offsets

	crashMu sync.RWMutex // held for writing only during Crash
}

// NewArena creates an arena of the given capacity in bytes on device dev.
// Offset 0 is reserved (a zero offset means "nil" throughout the codebase),
// so the first allocation starts at the device access unit boundary.
func NewArena(dev *device.Device, capacity int64) *Arena {
	a := &Arena{
		dev:      dev,
		volatile: make([]byte, capacity),
		durable:  make([]byte, capacity),
		next:     dev.Profile().AccessUnit,
		free:     make(map[int64][]int64),
	}
	return a
}

// NewArenaOn creates an arena whose durable image is mirrored write-through
// onto med (a file-backed persistence backend). The in-memory durable image
// is still maintained, so Crash/Recover and the device timing model behave
// exactly as on the simulated backend; med additionally makes every sync
// persist reach real stable storage.
func NewArenaOn(dev *device.Device, capacity int64, med Medium) *Arena {
	a := NewArena(dev, capacity)
	a.med = med
	return a
}

// Device returns the backing device model.
func (a *Arena) Device() *device.Device { return a.dev }

// Medium returns the installed persistence backend, or nil on the simulated
// default.
func (a *Arena) Medium() Medium { return a.med }

// MediumErr reports the first I/O error the persistence backend returned, or
// nil. A non-nil value means some acknowledged persist may not be durable;
// the store must stop acknowledging writes.
func (a *Arena) MediumErr() error {
	if e := a.medErr.Load(); e != nil {
		return *e
	}
	return nil
}

// failMedium latches a backend I/O error (first one wins).
func (a *Arena) failMedium(err error) {
	if err == nil {
		return
	}
	a.medErr.CompareAndSwap(nil, &err)
}

// RestoreAllocator positions the bump allocator at next, used when the arena
// is reattached to existing durable state after a process restart. The free
// list starts empty — like the post-Crash rebuild, reattachment carves fresh
// space rather than trusting host allocator state that died with the process.
func (a *Arena) RestoreAllocator(next int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	unit := a.dev.Profile().AccessUnit
	if next < unit {
		next = unit
	}
	a.next = next
	a.free = make(map[int64][]int64)
}

// ReserveFloor raises the bump allocator to at least floor, so future
// allocations can never land on durable state below it. Recovery calls it for
// every region a durable manifest references: the persisted allocator mark is
// only synced at log-segment granularity and can trail table allocations made
// since. A floor at or below the current mark is a no-op.
func (a *Arena) ReserveFloor(floor int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if floor > a.next {
		a.next = floor
	}
}

// LoadDurable fills the durable image by calling load on it (a reattach reads
// the medium's segment files into it), then makes the volatile image identical
// — the state a freshly restarted process observes. Must be called before any
// session touches the arena.
func (a *Arena) LoadDurable(load func(durable []byte) error) error {
	if err := load(a.durable); err != nil {
		return err
	}
	copy(a.volatile, a.durable)
	return nil
}

// Capacity returns the arena size in bytes.
func (a *Arena) Capacity() int64 { return int64(len(a.volatile)) }

// InUse returns the high-water allocation mark in bytes.
func (a *Arena) InUse() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// Alloc reserves size bytes aligned to the device access unit and returns the
// offset. Freed blocks of the same size class are reused. Allocation itself
// is not charged time: real pmem allocators amortize this into the writes.
func (a *Arena) Alloc(size int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("pmem: invalid alloc size %d", size)
	}
	unit := a.dev.Profile().AccessUnit
	size = (size + unit - 1) / unit * unit
	if p := a.dev.FaultPlan(); p != nil {
		if err := p.AllocError(); err != nil {
			return 0, err
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if list := a.free[size]; len(list) > 0 {
		off := list[len(list)-1]
		a.free[size] = list[:len(list)-1]
		return off, nil
	}
	if a.next+size > int64(len(a.volatile)) {
		return 0, fmt.Errorf("%w: need %d bytes, %d available", ErrOutOfSpace, size, int64(len(a.volatile))-a.next)
	}
	off := a.next
	a.next += size
	return off, nil
}

// Free returns an allocation of the given size to the arena's free list. The
// contents are zeroed in both images so stale data cannot leak into the next
// user of the block (the durable zeroing is not charged: real systems defer
// it into the next table write, which we charge in full).
func (a *Arena) Free(off, size int64) {
	if off == 0 || size <= 0 {
		return
	}
	unit := a.dev.Profile().AccessUnit
	size = (size + unit - 1) / unit * unit
	clear(a.volatile[off : off+size])
	// After a simulated power failure the process is as good as dead: its
	// deferred durable zeroing never happens, and the durable image must stay
	// exactly as the crash left it for recovery to observe.
	if !a.dev.PowerFailed() {
		clear(a.durable[off : off+size])
		if a.med != nil {
			// The zeroes need not be synced here: the medium guarantees they
			// are durable by the next synced WriteMeta, which is always
			// ordered before a durable mapping can make the region reachable
			// again (see Medium.ZeroDurable).
			a.failMedium(a.med.ZeroDurable(off, size))
		}
	}
	a.mu.Lock()
	a.free[size] = append(a.free[size], off)
	a.mu.Unlock()
}

// Bytes returns the volatile view of [off, off+size). Callers that model
// timed access must charge the device separately (ReadRandom/ReadSeq); this
// accessor exists so index structures can manipulate their backing memory.
func (a *Arena) Bytes(off, size int64) []byte {
	return a.volatile[off : off+size]
}

// ReadRandom charges one random device read and returns the volatile view of
// the range (identical to the durable view for persisted data).
func (a *Arena) ReadRandom(c *simclock.Clock, off, size int64) []byte {
	a.dev.ReadRandom(c, off, size)
	return a.volatile[off : off+size]
}

// ReadSeq charges a streaming read and returns the volatile view.
func (a *Arena) ReadSeq(c *simclock.Clock, off, size int64) []byte {
	a.dev.ReadSeq(c, off, size)
	return a.volatile[off : off+size]
}

// Persist flushes [off, off+size) from the volatile image to the durable
// image (clwb + sfence). Partial-unit writes incur read-modify-write
// charges in the device model.
func (a *Arena) Persist(c *simclock.Clock, off, size int64) {
	if size <= 0 {
		return
	}
	if p := a.dev.FaultPlan(); p != nil {
		keep, normal := p.NotePersist(a.dev.Profile().AccessUnit, off, size)
		if !normal {
			// The power failed on (or before) this persist: only the first
			// keep bytes — a whole-line prefix of the touched range — reach
			// media, and the device is not charged (the timeline ends here).
			if keep > 0 {
				a.crashMu.RLock()
				copy(a.durable[off:off+keep], a.volatile[off:off+keep])
				a.crashMu.RUnlock()
				if a.med != nil {
					// The torn prefix is what a reopen from the backing
					// store must observe; the dead process never syncs it.
					a.failMedium(a.med.WriteDurable(off, a.durable[off:off+keep], false))
				}
			}
			return
		}
	}
	a.crashMu.RLock()
	copy(a.durable[off:off+size], a.volatile[off:off+size])
	a.crashMu.RUnlock()
	if a.med != nil {
		// Write-through with sync: the persist point is the durability point.
		a.failMedium(a.med.WriteDurable(off, a.durable[off:off+size], true))
	}
	a.dev.WritePersist(c, off, size)
}

// PersistMeta durably replaces the engine's host-metadata record on the
// persistence backend (a no-op on the simulated default, whose host state
// lives in the process). The write counts as a persist event against any
// installed fault plan — on the file backend it is an fsync like any other
// persist point — and a plan that fires on it tears the freshly framed record,
// which the medium's record checksum must detect on reopen. No virtual time
// is charged: metadata persists exist only on the real backend, which the
// deterministic virtual-time experiments never use.
func (a *Arena) PersistMeta(payload []byte) {
	if a.med == nil {
		return
	}
	tear := int64(-1)
	if p := a.dev.FaultPlan(); p != nil {
		keep, normal := p.NotePersist(a.dev.Profile().AccessUnit, 0, int64(len(payload)))
		if !normal {
			if keep == 0 {
				// Nothing of the record reached the store; the previous
				// record remains the newest valid one.
				return
			}
			tear = keep
		}
	}
	a.failMedium(a.med.WriteMeta(payload, tear))
}

// Store writes data into the volatile image without persisting it. It models
// a plain cached store: free in time (the cost is charged when the line is
// eventually persisted), lost on crash if never fenced.
func (a *Arena) Store(off int64, data []byte) {
	copy(a.volatile[off:off+int64(len(data))], data)
}

// StorePersist writes data and immediately persists it — the common
// store+clwb+sfence (or ntstore+sfence) sequence for small in-place updates,
// the access pattern that makes Pmem-Hash slow in the paper.
func (a *Arena) StorePersist(c *simclock.Clock, off int64, data []byte) {
	a.Store(off, data)
	a.Persist(c, off, int64(len(data)))
}

// Crash simulates a power failure: the volatile image is replaced by the
// durable image, discarding every write that was not persisted. The free list
// is discarded too — it is host allocator state, and after a mid-operation
// crash it can hold blocks the durable metadata still references (a table
// released after a manifest persist that never committed); reusing those
// would overwrite live recovered data. The post-recovery allocator instead
// carves fresh space, modeling an allocator that rebuilds its metadata
// conservatively. The caller must guarantee no concurrent access (stores stop
// their workers first).
func (a *Arena) Crash() {
	a.crashMu.Lock()
	copy(a.volatile, a.durable)
	a.crashMu.Unlock()
	a.mu.Lock()
	a.free = make(map[int64][]int64)
	a.mu.Unlock()
}

// TamperDurable overwrites bytes of the durable image directly, bypassing the
// volatile image and the device model. It exists for fault-injection tests
// (fuzzing recovery with corrupted durable state) and must not be used by
// store code.
func (a *Arena) TamperDurable(off int64, data []byte) {
	if off < 0 || off+int64(len(data)) > int64(len(a.durable)) {
		return
	}
	a.crashMu.Lock()
	copy(a.durable[off:off+int64(len(data))], data)
	a.crashMu.Unlock()
	if a.med != nil {
		a.failMedium(a.med.WriteDurable(off, data, false))
	}
}

// Stats returns the backing device's media counters.
func (a *Arena) Stats() device.Stats { return a.dev.Stats() }
