package pmem

import (
	"bytes"
	"errors"
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

func TestPersistTornKeepsExactPrefix(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(1024)
	data := bytes.Repeat([]byte{0xCD}, 1024)
	a.Store(off, data)

	a.Device().InstallFaultPlan(&device.FaultPlan{CrashAtPersist: 1, Tear: device.TearHalf})
	before := a.Stats()
	a.Persist(c, off, 1024) // 4 lines; TearHalf commits the first 2
	if got := a.Stats(); got.MediaBytesWritten != before.MediaBytesWritten {
		t.Fatal("crashing persist must not charge the device")
	}
	a.Device().InstallFaultPlan(nil)
	a.Crash()
	if !bytes.Equal(a.Bytes(off, 512), data[:512]) {
		t.Fatal("committed prefix lost")
	}
	if !bytes.Equal(a.Bytes(off+512, 512), make([]byte, 512)) {
		t.Fatal("uncommitted suffix survived the torn persist")
	}
}

func TestPersistsFrozenAfterTrigger(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(512)
	a.Device().InstallFaultPlan(&device.FaultPlan{CrashAtPersist: 1, Tear: device.TearNone})
	a.StorePersist(c, off, []byte("gone")) // triggers, nothing commits
	a.StorePersist(c, off+256, []byte("also gone"))
	a.Device().InstallFaultPlan(nil)
	a.Crash()
	if !bytes.Equal(a.Bytes(off, 512), make([]byte, 512)) {
		t.Fatal("post-trigger persist reached durable media")
	}
}

func TestFreeAfterPowerFailurePreservesDurable(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, []byte("keep me"))
	p := &device.FaultPlan{CrashAtPersist: 1}
	a.Device().InstallFaultPlan(p)
	a.Persist(c, off, 1) // trigger
	a.Free(off, 256)     // frozen process: durable zeroing must not happen
	a.Device().InstallFaultPlan(nil)
	a.Crash()
	if got := string(a.Bytes(off, 7)); got != "keep me" {
		t.Fatalf("durable data zeroed by post-trigger Free: %q", got)
	}
}

func TestCrashDiscardsFreeList(t *testing.T) {
	a := newTestArena(t)
	off, _ := a.Alloc(256)
	a.Free(off, 256)
	a.Crash()
	off2, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if off2 == off {
		t.Fatal("post-crash alloc reused a pre-crash freed block")
	}
	// Free/Alloc reuse still works after the crash.
	a.Free(off2, 256)
	off3, err := a.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if off3 != off2 {
		t.Fatalf("post-crash free list broken: got %d, want %d", off3, off2)
	}
}

func TestAllocErrorInjection(t *testing.T) {
	a := newTestArena(t)
	a.Device().InstallFaultPlan(&device.FaultPlan{ErrorProb: 1.0, Seed: 3})
	if _, err := a.Alloc(256); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Alloc = %v, want ErrInjected", err)
	}
	a.Device().InstallFaultPlan(nil)
	if _, err := a.Alloc(256); err != nil {
		t.Fatalf("Alloc after uninstall = %v", err)
	}
}

func TestTamperDurableVisibleAfterCrash(t *testing.T) {
	a := newTestArena(t)
	c := simclock.New(0)
	off, _ := a.Alloc(256)
	a.StorePersist(c, off, []byte("original"))
	a.TamperDurable(off, []byte("corrupt!"))
	if got := string(a.Bytes(off, 8)); got != "original" {
		t.Fatalf("tamper leaked into volatile image: %q", got)
	}
	a.Crash()
	if got := string(a.Bytes(off, 8)); got != "corrupt!" {
		t.Fatalf("tamper not visible after crash: %q", got)
	}
	// Out-of-range tampering is ignored, not a panic.
	a.TamperDurable(a.Capacity()-4, []byte("overflow"))
	a.TamperDurable(-1, []byte("x"))
}
