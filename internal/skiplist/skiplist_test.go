package skiplist

import (
	"math/rand"
	"testing"

	"chameleondb/internal/device"
	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
)

func newList(t *testing.T) (*List, *pmem.Arena) {
	t.Helper()
	a := pmem.NewArena(device.New(device.OptanePmem), 1<<24)
	l, err := New(a, pmem.NewSlab(a, 1<<16), 1)
	if err != nil {
		t.Fatal(err)
	}
	return l, a
}

func TestInsertGet(t *testing.T) {
	l, _ := newList(t)
	c := simclock.New(0)
	for i := uint64(1); i <= 500; i++ {
		if err := l.Insert(c, i*7, i); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 500 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i := uint64(1); i <= 500; i++ {
		ref, ok := l.Get(c, i*7)
		if !ok || ref != i {
			t.Fatalf("get %d = %d, %v", i*7, ref, ok)
		}
	}
	if _, ok := l.Get(c, 3); ok {
		t.Fatal("found absent key")
	}
}

func TestUpdateInPlace(t *testing.T) {
	l, _ := newList(t)
	c := simclock.New(0)
	l.Insert(c, 10, 1)
	l.Insert(c, 10, 2)
	if l.Len() != 1 {
		t.Fatalf("update grew list: %d", l.Len())
	}
	ref, _ := l.Get(c, 10)
	if ref != 2 {
		t.Fatal("update not visible")
	}
}

func TestIterateSorted(t *testing.T) {
	l, _ := newList(t)
	c := simclock.New(0)
	r := rand.New(rand.NewSource(2))
	inserted := map[uint64]bool{}
	for i := 0; i < 300; i++ {
		h := uint64(r.Intn(10000)) + 1
		l.Insert(c, h, 1)
		inserted[h] = true
	}
	var prev uint64
	n := 0
	l.Iterate(func(h, ref uint64) bool {
		if h <= prev {
			t.Fatalf("iteration not sorted: %d after %d", h, prev)
		}
		prev = h
		n++
		return true
	})
	if n != len(inserted) {
		t.Fatalf("iterated %d, want %d", n, len(inserted))
	}
}

func TestInsertWritesAreSmallAndAmplified(t *testing.T) {
	l, a := newList(t)
	c := simclock.New(0)
	a.Device().ResetStats()
	for i := uint64(1); i <= 1000; i++ {
		l.Insert(c, i*13, i)
	}
	wa := a.Device().Stats().WriteAmplification()
	if wa < 2 {
		t.Fatalf("skiplist insert WA = %v, expected substantial amplification", wa)
	}
}

func TestSurvivesCrash(t *testing.T) {
	l, a := newList(t)
	c := simclock.New(0)
	for i := uint64(1); i <= 100; i++ {
		l.Insert(c, i, i)
	}
	a.Crash()
	// Every insert was persisted, so the whole list must survive.
	for i := uint64(1); i <= 100; i++ {
		ref, ok := l.Get(c, i)
		if !ok || ref != i {
			t.Fatalf("entry %d lost on crash", i)
		}
	}
}

func TestReset(t *testing.T) {
	l, _ := newList(t)
	c := simclock.New(0)
	for i := uint64(1); i <= 50; i++ {
		l.Insert(c, i, i)
	}
	l.Reset(c)
	if l.Len() != 0 || l.PmemBytes() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, ok := l.Get(c, 1); ok {
		t.Fatal("entry survived reset")
	}
	// List must be reusable after reset.
	l.Insert(c, 5, 99)
	if ref, ok := l.Get(c, 5); !ok || ref != 99 {
		t.Fatal("list unusable after reset")
	}
}
