// Package skiplist implements the in-Pmem mutable MemTable used by the
// NoveLSM baseline (Kannan et al., ATC'18). NoveLSM persists arriving KV
// items by inserting them directly into a skip list in persistent memory;
// every insert performs several small random pmem writes (the new node plus
// pointer updates in predecessors), each of which the device model amplifies
// to 256 B read-modify-writes — the behaviour the paper identifies as
// NoveLSM's main write-path weakness (Section 3.7).
package skiplist

import (
	"encoding/binary"
	"math/rand"

	"chameleondb/internal/pmem"
	"chameleondb/internal/simclock"
)

const (
	maxHeight = 12
	// node layout: [8 B hash][8 B ref][1 B height, padded to 8][height * 8 B nexts]
	nodeHdr = 24
)

// List is a persistent skip list ordered by key hash, mapping hashes to log
// references. Not safe for concurrent use.
type List struct {
	arena *pmem.Arena
	slab  *pmem.Slab
	head  int64 // offset of head node (full height, hash ignored)
	rng   *rand.Rand
	count int
	bytes int64
}

// New creates an empty list whose nodes are carved from slab.
func New(arena *pmem.Arena, slab *pmem.Slab, seed int64) (*List, error) {
	l := &List{arena: arena, slab: slab, rng: rand.New(rand.NewSource(seed))}
	off, err := slab.Alloc(nodeHdr + maxHeight*8)
	if err != nil {
		return nil, err
	}
	l.head = off
	return l, nil
}

func (l *List) nodeHash(off int64) uint64 {
	return binary.LittleEndian.Uint64(l.arena.Bytes(off, 8))
}

func (l *List) nodeRef(off int64) uint64 {
	return binary.LittleEndian.Uint64(l.arena.Bytes(off+8, 8))
}

func (l *List) nodeHeight(off int64) int {
	return int(l.arena.Bytes(off+16, 1)[0])
}

func (l *List) next(off int64, level int) int64 {
	return int64(binary.LittleEndian.Uint64(l.arena.Bytes(off+nodeHdr+int64(level)*8, 8)))
}

func (l *List) setNextVolatile(off int64, level int, to int64) {
	binary.LittleEndian.PutUint64(l.arena.Bytes(off+nodeHdr+int64(level)*8, 8), uint64(to))
}

// Len returns the number of entries.
func (l *List) Len() int { return l.count }

// PmemBytes returns the bytes of node storage consumed.
func (l *List) PmemBytes() int64 { return l.bytes }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findPredecessors walks the list charging one random pmem read per node
// visited and fills prev with the rightmost node < hash at each level.
func (l *List) findPredecessors(c *simclock.Clock, hash uint64, prev *[maxHeight]int64) int64 {
	x := l.head
	for level := maxHeight - 1; level >= 0; level-- {
		for {
			nxt := l.next(x, level)
			if nxt == 0 || l.nodeHash(nxt) >= hash {
				break
			}
			l.arena.ReadRandom(c, nxt, nodeHdr)
			x = nxt
		}
		prev[level] = x
	}
	n := l.next(x, 0)
	if n != 0 {
		l.arena.ReadRandom(c, n, nodeHdr)
	}
	return n
}

// Insert adds or updates hash -> ref. Updates overwrite the node's ref in
// place (one small persisted write); inserts allocate a node and splice it in
// with one small persisted write per touched predecessor pointer.
func (l *List) Insert(c *simclock.Clock, hash uint64, ref uint64) error {
	var prev [maxHeight]int64
	n := l.findPredecessors(c, hash, &prev)
	if n != 0 && l.nodeHash(n) == hash {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], ref)
		l.arena.StorePersist(c, n+8, b[:])
		return nil
	}
	h := l.randomHeight()
	size := int64(nodeHdr + h*8)
	off, err := l.slab.Alloc(size)
	if err != nil {
		return err
	}
	l.bytes += size
	buf := l.arena.Bytes(off, size)
	binary.LittleEndian.PutUint64(buf[0:8], hash)
	binary.LittleEndian.PutUint64(buf[8:16], ref)
	buf[16] = byte(h)
	for level := 0; level < h; level++ {
		l.setNextVolatile(off, level, l.next(prev[level], level))
	}
	// Persist the node, then flip each predecessor pointer with a small
	// persisted write — NoveLSM's write-amplifying pattern.
	l.arena.Persist(c, off, size)
	for level := 0; level < h; level++ {
		l.setNextVolatile(prev[level], level, off)
		l.arena.Persist(c, prev[level]+nodeHdr+int64(level)*8, 8)
	}
	l.count++
	return nil
}

// Get returns the reference for hash.
func (l *List) Get(c *simclock.Clock, hash uint64) (uint64, bool) {
	var prev [maxHeight]int64
	n := l.findPredecessors(c, hash, &prev)
	if n != 0 && l.nodeHash(n) == hash {
		return l.nodeRef(n), true
	}
	return 0, false
}

// Iterate visits entries in hash order without timing charges; compactions
// charge a bulk sequential read instead.
func (l *List) Iterate(fn func(hash, ref uint64) bool) {
	for n := l.next(l.head, 0); n != 0; n = l.next(n, 0) {
		if !fn(l.nodeHash(n), l.nodeRef(n)) {
			return
		}
	}
}

// Reset empties the list (the nodes' slab space is abandoned, as NoveLSM
// abandons an immutable memtable after compaction). The cleared head is
// persisted: the list head is durable state, and leaving stale durable
// pointers into the abandoned chain would corrupt the list after a crash.
func (l *List) Reset(c *simclock.Clock) {
	for level := 0; level < maxHeight; level++ {
		l.setNextVolatile(l.head, level, 0)
	}
	l.arena.Persist(c, l.head, nodeHdr+maxHeight*8)
	l.count = 0
	l.bytes = 0
}
