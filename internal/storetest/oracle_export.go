// Exported surface of the crash-durability oracle for sweeps built outside
// this package (internal/replsweep). The core tests import storetest, so a
// sweep that needs internal/core — like the replica-pair sweep — cannot live
// here without a test-only import cycle; it lives in its own package and
// reaches the oracle through these wrappers instead.
package storetest

// RunState is the exported handle on the durability oracle: durable state at
// the last promoted acknowledgment point, everything acked since, and the
// ambiguous in-flight ops. See runState.
type RunState = runState

// NewRunState returns an empty oracle.
func NewRunState() *RunState { return newRunState() }

// Ack records one acknowledged write (del=true for a delete).
func (rs *runState) Ack(key int, val string, del bool) {
	rs.ack(key, sinceVal{val: val, del: del})
}

// Promote folds everything acknowledged so far into the durable view, as
// after a successful durability barrier (Flush, WAIT(1)).
func (rs *runState) Promote() { rs.promote() }

// AddPending records one write whose durability is ambiguous: it was in
// flight when the fault plan triggered.
func (rs *runState) AddPending(key int, val string, del bool) {
	rs.pending = append(rs.pending, pendingOp{key: key, v: sinceVal{val: val, del: del}})
}

// Legal reports whether the recovered (got, ok) for key is consistent with
// the crash-durability contract, and if not, why.
func (rs *runState) Legal(key int, got []byte, ok bool) (bool, string) {
	return rs.legal(key, got, ok)
}

// AppliedVal returns the oracle's applied (clean-run) value for key.
func (rs *runState) AppliedVal(key int) (string, bool) {
	v, ok := rs.applied[key]
	return v, ok
}

// SweepKey is the scripted key encoding shared by all sweeps.
func SweepKey(i int) []byte { return sweepKey(i) }

// Trunc shortens a value for error messages.
func Trunc(b []byte) []byte { return trunc(b) }

// Logf calls f if non-nil.
func Logf(f func(string, ...any), format string, args ...any) { logf(f, format, args...) }
