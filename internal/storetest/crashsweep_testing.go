package storetest

import (
	"testing"

	"chameleondb/internal/kvstore"
)

// RunCrashSweep executes the exhaustive crash-point sweep as a subtest and
// logs the sweep counts (persist events, points, torn runs).
func RunCrashSweep(t *testing.T, name string, open func() (kvstore.Store, error), cfg SweepConfig) {
	t.Run(name+"/CrashSweep", func(t *testing.T) {
		cfg.Logf = t.Logf
		res, err := CrashSweep(open, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s crash sweep: %s", name, res)
	})
}

// RunCrashSoak executes the randomized crash soak as a subtest.
func RunCrashSoak(t *testing.T, name string, open func() (kvstore.Store, error), cfg SoakConfig) {
	t.Run(name+"/CrashSoak", func(t *testing.T) {
		cfg.Logf = t.Logf
		res, err := CrashSoak(open, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s crash soak: %d iterations, %d crash points, %d persist events, %d retries",
			name, res.Iterations, res.CrashPoints, res.PersistEvents, res.Retries)
	})
}
