// Package storetest is a conformance kit: every store in the evaluation
// (ChameleonDB and all baselines) is driven through the same correctness
// suites via the kvstore interfaces, so a behavioural regression in any
// store fails its own test file with the shared logic.
package storetest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// Factory builds a fresh store instance for one test.
type Factory func(t *testing.T) kvstore.Store

// Options tune the suite per store.
type Options struct {
	// Keys is the data volume for the churn tests.
	Keys int
	// SupportsRecovery runs the crash/recover suite. Stores whose recovery
	// intentionally drops acknowledged-unflushed data still pass: the suite
	// only requires explicitly Flushed data to survive.
	SupportsRecovery bool
}

// Run executes the full conformance suite.
func Run(t *testing.T, name string, f Factory, opt Options) {
	if opt.Keys == 0 {
		opt.Keys = 5000
	}
	t.Run(name+"/Basic", func(t *testing.T) { basic(t, f) })
	t.Run(name+"/ConcurrentSessions", func(t *testing.T) { concurrent(t, f) })
	t.Run(name+"/Churn", func(t *testing.T) { churn(t, f, opt.Keys) })
	t.Run(name+"/OracleRandomOps", func(t *testing.T) { oracle(t, f) })
	t.Run(name+"/TimeAdvances", func(t *testing.T) { timing(t, f) })
	if opt.SupportsRecovery {
		t.Run(name+"/CrashRecover", func(t *testing.T) { crash(t, f, opt.Keys) })
	}
}

func k(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

func basic(t *testing.T, f Factory) {
	s := f(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0))
	if err := se.Put(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := se.Get(k(1))
	if err != nil || !ok || string(got) != string(v(1)) {
		t.Fatalf("Get = %q %v %v", got, ok, err)
	}
	if _, ok, _ := se.Get(k(2)); ok {
		t.Fatal("found absent key")
	}
	if err := se.Put(k(1), v(2)); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := se.Get(k(1)); string(got) != string(v(2)) {
		t.Fatal("update not visible")
	}
	if err := se.Delete(k(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := se.Get(k(1)); ok {
		t.Fatal("deleted key still readable")
	}
	// Empty value round trip.
	if err := se.Put(k(3), nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err = se.Get(k(3))
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty value Get = %q %v %v", got, ok, err)
	}
}

// concurrent drives the store from real goroutines, one session each, over
// disjoint key ranges: exercises the stores' locking (run with -race to
// verify).
func concurrent(t *testing.T, f Factory) {
	s := f(t)
	defer s.Close()
	const workers = 8
	const perWorker = 1500
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			se := s.NewSession(simclock.New(0))
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-%06d", w, i))
				if err := se.Put(key, []byte("v")); err != nil {
					errs[w] = err
					return
				}
				if i%3 == 0 {
					if _, ok, err := se.Get(key); err != nil || !ok {
						errs[w] = fmt.Errorf("readback %s: ok=%v err=%v", key, ok, err)
						return
					}
				}
			}
			errs[w] = se.Flush()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	se := s.NewSession(simclock.New(0))
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i += 97 {
			key := []byte(fmt.Sprintf("w%02d-%06d", w, i))
			if _, ok, err := se.Get(key); err != nil || !ok {
				t.Fatalf("lost %s after concurrent load: %v", key, err)
			}
		}
	}
}

func churn(t *testing.T, f Factory, keys int) {
	s := f(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0))
	for i := 0; i < keys; i++ {
		if err := se.Put(k(i), v(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Overwrite a third, delete a third.
	for i := 0; i < keys; i += 3 {
		if err := se.Put(k(i), v(i+1000000)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < keys; i += 3 {
		if err := se.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		got, ok, err := se.Get(k(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		switch i % 3 {
		case 0:
			if !ok || string(got) != string(v(i+1000000)) {
				t.Fatalf("overwritten key %d = %q %v", i, got, ok)
			}
		case 1:
			if ok {
				t.Fatalf("deleted key %d still readable", i)
			}
		case 2:
			if !ok || string(got) != string(v(i)) {
				t.Fatalf("untouched key %d = %q %v", i, got, ok)
			}
		}
	}
}

func oracle(t *testing.T, f Factory) {
	s := f(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0))
	r := rand.New(rand.NewSource(99))
	state := map[string]string{}
	const space = 800
	for op := 0; op < 12000; op++ {
		key := fmt.Sprintf("key-%08d", r.Intn(space))
		switch r.Intn(5) {
		case 0, 1, 2:
			val := fmt.Sprintf("value-%d-%d", op, r.Int63())
			if err := se.Put([]byte(key), []byte(val)); err != nil {
				t.Fatalf("op %d put: %v", op, err)
			}
			state[key] = val
		case 3:
			if err := se.Delete([]byte(key)); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			delete(state, key)
		case 4:
			got, ok, err := se.Get([]byte(key))
			if err != nil {
				t.Fatalf("op %d get: %v", op, err)
			}
			want, wantOK := state[key]
			if ok != wantOK || (ok && string(got) != want) {
				t.Fatalf("op %d get %s = %q,%v want %q,%v", op, key, got, ok, want, wantOK)
			}
		}
	}
}

func timing(t *testing.T, f Factory) {
	s := f(t)
	defer s.Close()
	c := simclock.New(0)
	se := s.NewSession(c)
	se.Put(k(1), v(1))
	if c.Now() <= 0 {
		t.Fatal("put charged no virtual time")
	}
	mark := c.Now()
	se.Get(k(1))
	if c.Now() <= mark {
		t.Fatal("get charged no virtual time")
	}
	if s.DRAMFootprint() < 0 {
		t.Fatal("negative DRAM footprint")
	}
}

func crash(t *testing.T, f Factory, keys int) {
	s := f(t)
	defer s.Close()
	se := s.NewSession(simclock.New(0))
	for i := 0; i < keys; i++ {
		if err := se.Put(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i += 5 {
		if err := se.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Crash()
	c := simclock.New(0)
	if err := s.Recover(c); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= 0 {
		t.Fatal("recovery charged no virtual time")
	}
	se2 := s.NewSession(simclock.New(0))
	for i := 0; i < keys; i++ {
		got, ok, err := se2.Get(k(i))
		if err != nil {
			t.Fatalf("post-recovery get %d: %v", i, err)
		}
		if i%5 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected by recovery", i)
			}
		} else if !ok || string(got) != string(v(i)) {
			t.Fatalf("flushed key %d lost in crash: %q %v", i, got, ok)
		}
	}
	// The store must accept writes again.
	if err := se2.Put(k(keys+1), v(keys+1)); err != nil {
		t.Fatalf("post-recovery put: %v", err)
	}
	if got, ok, _ := se2.Get(k(keys + 1)); !ok || string(got) != string(v(keys+1)) {
		t.Fatal("post-recovery put not readable")
	}
}
