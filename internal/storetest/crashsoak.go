package storetest

import (
	"errors"
	"fmt"
	"math/rand"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

// SoakConfig sizes the randomized crash soak: each iteration generates a
// fresh workload from a derived seed and exercises both transient-error
// tolerance and a random torn crash point, so repeated runs cover workload
// shapes the fixed sweep script does not.
type SoakConfig struct {
	Seed       int64
	Iterations int

	Ops         int
	Keys        int
	MaxValueLen int
	FlushEvery  int

	// ErrorProb is the per-allocation probability of a transient injected
	// failure during the error-tolerance run (0 disables that half).
	ErrorProb float64

	Logf func(format string, args ...any)
}

// SoakResult summarizes a crash soak.
type SoakResult struct {
	Iterations    int
	Retries       int64 // ops retried after a transient injected error
	PersistEvents int64 // summed over all iterations' clean runs
	CrashPoints   int   // random crash points tested (one per iteration)
}

// CrashSoak runs cfg.Iterations independent rounds. Each round:
//
//  1. Error-tolerance run (if ErrorProb > 0): the scripted workload executes
//     with transient allocation failures injected; every failed op is retried
//     until it succeeds, and the final store state must exactly match the
//     in-memory model — transient errors must never corrupt acknowledged
//     state.
//  2. Crash run: a clean count run measures the script's persist total, then
//     one uniformly random crash point is replayed with a random tear
//     (TearRandom) and checked with the full recovery oracle of CrashSweep.
func CrashSoak(newStore NewStoreFunc, cfg SoakConfig) (SoakResult, error) {
	var res SoakResult
	if cfg.Iterations <= 0 || cfg.Ops <= 0 || cfg.Keys <= 0 {
		return res, fmt.Errorf("crashsoak: Iterations, Ops and Keys must be positive")
	}
	for it := 0; it < cfg.Iterations; it++ {
		seed := cfg.Seed + int64(it)*1_000_003
		sweepCfg := SweepConfig{
			Seed:        seed,
			Ops:         cfg.Ops,
			Keys:        cfg.Keys,
			MaxValueLen: cfg.MaxValueLen,
			FlushEvery:  cfg.FlushEvery,
		}
		script := buildScript(sweepCfg)

		if cfg.ErrorProb > 0 {
			retries, err := errorToleranceRun(newStore, script, sweepCfg, cfg.ErrorProb)
			if err != nil {
				return res, fmt.Errorf("crashsoak: iteration %d (seed %d): error run: %w", it, seed, err)
			}
			res.Retries += retries
		}

		total, err := countPersists(newStore, script, sweepCfg)
		if err != nil {
			return res, fmt.Errorf("crashsoak: iteration %d (seed %d): clean run: %w", it, seed, err)
		}
		res.PersistEvents += total
		point := 1 + rand.New(rand.NewSource(seed^0x5eed)).Int63n(total)
		if err := runCrashPoint(newStore, script, sweepCfg, point, device.TearRandom); err != nil {
			return res, fmt.Errorf("crashsoak: iteration %d (seed %d): point %d/%d: %w", it, seed, point, total, err)
		}
		res.CrashPoints++
		logf(cfg.Logf, "crashsoak: iteration %d: %d persists, crashed+recovered at %d, %d retries so far",
			it, total, point, res.Retries)
	}
	res.Iterations = cfg.Iterations
	return res, nil
}

// errorToleranceRun executes the script with transient allocation errors
// injected at prob, retrying each failed op (a failed op may have partially
// applied; puts and deletes are idempotent, so the retry converges). The
// final state must exactly match the model.
func errorToleranceRun(newStore NewStoreFunc, script []scriptOp, cfg SweepConfig, prob float64) (int64, error) {
	const maxRetries = 200
	st, err := newStore()
	if err != nil {
		return 0, err
	}
	defer st.Close()
	dev, err := deviceOf(st)
	if err != nil {
		return 0, err
	}
	plan := &device.FaultPlan{ErrorProb: prob, Seed: cfg.Seed ^ 0x7e57}
	dev.InstallFaultPlan(plan)

	se := st.NewSession(simclock.New(0))
	applied := make(map[int]string)
	var retries int64
	for n, op := range script {
		for attempt := 0; ; attempt++ {
			var err error
			switch op.kind {
			case opPut:
				err = se.Put(sweepKey(op.key), op.val)
			case opDelete:
				err = se.Delete(sweepKey(op.key))
			case opFlush:
				err = se.Flush()
			case opGet:
				// Exactness is only guaranteed once the preceding op's retry
				// succeeded, which holds here; a get itself never allocates
				// but tolerate injected errors uniformly anyway.
				var got []byte
				var ok bool
				got, ok, err = se.Get(sweepKey(op.key))
				if err == nil {
					want, wantOK := applied[op.key]
					if ok != wantOK || (ok && string(got) != want) {
						return retries, fmt.Errorf("op %d: get key %d = %q,%v want %q,%v",
							n, op.key, trunc(got), ok, trunc([]byte(want)), wantOK)
					}
				}
			}
			if err == nil {
				break
			}
			if !errors.Is(err, device.ErrInjected) || attempt >= maxRetries {
				return retries, fmt.Errorf("op %d (%v), attempt %d: %w", n, op.kind, attempt+1, err)
			}
			retries++
		}
		switch op.kind {
		case opPut:
			applied[op.key] = string(op.val)
		case opDelete:
			delete(applied, op.key)
		}
	}
	for key := 0; key < cfg.Keys; key++ {
		got, ok, err := se.Get(sweepKey(key))
		if err != nil {
			return retries, fmt.Errorf("final get key %d: %w", key, err)
		}
		want, wantOK := applied[key]
		if ok != wantOK || (ok && string(got) != want) {
			return retries, fmt.Errorf("final state: key %d = %q,%v want %q,%v",
				key, trunc(got), ok, trunc([]byte(want)), wantOK)
		}
	}
	return retries, nil
}
