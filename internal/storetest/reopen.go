package storetest

import (
	"fmt"

	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// ReopenFunc cold-opens a store over the same durable directory the previous
// incarnation used, returning it in the crashed (pre-Recover) state. It is
// called after the previous store has been closed, so the backing files are
// free to reopen.
type ReopenFunc func() (kvstore.Store, error)

// Reopening wraps a store whose durable state lives outside the process (the
// file backend) and turns every Recover into a full restart: the current
// store is closed, the directory is reopened cold through reopen, and the
// fresh store recovers from what the files actually hold. Running the crash
// sweep through this wrapper therefore checks the real restart path — host
// metadata persistence, manifest reattachment, allocator restore — under the
// exact same fault plans the in-process sweep uses, not just the in-memory
// durable image.
//
// Crash forwards to the inner store (the fault plan has already frozen the
// durable state; Crash only discards the volatile half), and everything else
// proxies to the current incarnation.
type Reopening struct {
	inner  kvstore.Store
	reopen ReopenFunc
}

// NewReopening wraps st. reopen must open the same directory st writes to.
func NewReopening(st kvstore.Store, reopen ReopenFunc) *Reopening {
	return &Reopening{inner: st, reopen: reopen}
}

var _ kvstore.Store = (*Reopening)(nil)

// Name implements kvstore.Store.
func (r *Reopening) Name() string { return r.inner.Name() + "+reopen" }

// NewSession implements kvstore.Store against the current incarnation.
func (r *Reopening) NewSession(c *simclock.Clock) kvstore.Session { return r.inner.NewSession(c) }

// DRAMFootprint implements kvstore.Store.
func (r *Reopening) DRAMFootprint() int64 { return r.inner.DRAMFootprint() }

// DeviceStats implements kvstore.Store.
func (r *Reopening) DeviceStats() device.Stats { return r.inner.DeviceStats() }

// Device exposes the current incarnation's device model so the sweep can
// install fault plans.
func (r *Reopening) Device() *device.Device {
	return r.inner.(interface{ Device() *device.Device }).Device()
}

// Crash implements kvstore.Store: the volatile loss happens in-process; the
// restart happens at Recover.
func (r *Reopening) Crash() { r.inner.Crash() }

// Recover implements kvstore.Store as a real restart: close the dead
// incarnation (its backend releases the files without disturbing the durable
// state), reopen the directory cold, and let the fresh store recover from
// the files.
func (r *Reopening) Recover(c *simclock.Clock) error {
	if err := r.inner.Close(); err != nil {
		return fmt.Errorf("reopen: closing crashed store: %w", err)
	}
	st, err := r.reopen()
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	r.inner = st
	return r.inner.Recover(c)
}

// Close implements kvstore.Store.
func (r *Reopening) Close() error { return r.inner.Close() }

// VerifyIntegrity forwards the sweep's integrity hook when the current
// incarnation has one.
func (r *Reopening) VerifyIntegrity(c *simclock.Clock) error {
	if v, ok := r.inner.(interface {
		VerifyIntegrity(*simclock.Clock) error
	}); ok {
		return v.VerifyIntegrity(c)
	}
	return nil
}

// FlushAll forwards the maintenance hook when present.
func (r *Reopening) FlushAll(c *simclock.Clock) error {
	if f, ok := r.inner.(interface {
		FlushAll(*simclock.Clock) error
	}); ok {
		return f.FlushAll(c)
	}
	return nil
}

// DumpABIs forwards the maintenance hook when present.
func (r *Reopening) DumpABIs(c *simclock.Clock) error {
	if d, ok := r.inner.(interface {
		DumpABIs(*simclock.Clock) error
	}); ok {
		return d.DumpABIs(c)
	}
	return nil
}

// CompactLog forwards the maintenance hook when present.
func (r *Reopening) CompactLog(c *simclock.Clock, budget int64) (int64, error) {
	if g, ok := r.inner.(interface {
		CompactLog(*simclock.Clock, int64) (int64, error)
	}); ok {
		return g.CompactLog(c, budget)
	}
	return 0, nil
}
