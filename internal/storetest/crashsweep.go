// Crash-point sweep: the exhaustive crash-consistency harness built on the
// device fault-injection layer (internal/device.FaultPlan).
//
// The harness runs a deterministic scripted workload twice over. A first
// "count run" executes the script on a fresh store with a pure-counter fault
// plan installed, yielding the total number of persist events N the workload
// issues. Then, for every crash point i in [1, N], a fresh store replays the
// same script with a plan that simulates a power failure at the i-th persist
// (optionally tearing it at a 256 B media-line boundary), crashes the store,
// recovers it, and checks the recovered state against a durability oracle:
//
//   - every key's recovered value must be either the value it had at the last
//     successful (un-triggered) Flush, or one of the values acknowledged for
//     it since — never an older or invented value;
//   - a key may only be absent if it was absent at the last successful Flush
//     or a delete was acknowledged since;
//   - recovery itself must succeed, the store's own integrity verifier (when
//     it exposes one) must pass, and the store must accept new writes.
//
// Because persist events are driven purely by sizes and 256 B alignment, the
// count is reproducible across runs — the sweep treats a script that fails to
// reach its crash point as an error rather than skipping it.
package storetest

import (
	"bytes"
	"fmt"
	"math/rand"

	"chameleondb/internal/device"
	"chameleondb/internal/kvstore"
	"chameleondb/internal/simclock"
)

// NewStoreFunc builds a fresh store on a fresh simulated device. The sweep
// opens one store per crash point, so the function must be cheap and must not
// share device state between calls.
type NewStoreFunc func() (kvstore.Store, error)

// MaintenanceFunc runs one maintenance phase against a quiesced store —
// forced flushes, index dumps, log GC. Phase numbers increase monotonically
// through the script; implementations typically rotate over their entry
// points with phase % n. Errors are tolerated only after the fault plan has
// triggered.
type MaintenanceFunc func(st kvstore.Store, c *simclock.Clock, phase int) error

// SweepConfig sizes the scripted workload and the sweep.
type SweepConfig struct {
	Seed        int64 // seeds the script generator and per-point tear RNGs
	Ops         int   // scripted operations (puts/deletes/gets)
	Keys        int   // key-space size
	MaxValueLen int   // value lengths are 1..MaxValueLen (plus occasional empty)
	FlushEvery  int   // a session Flush every this many ops (0 = only the final one)

	// MaintainEvery inserts a maintenance phase every this many ops (0 =
	// none). Maintenance must then be non-nil.
	MaintainEvery int
	Maintenance   MaintenanceFunc

	// BatchPuts groups runs of up to this many consecutive scripted puts into
	// one kvstore.BatchWriter.PutBatch call when the store's session supports
	// it (0 or 1 = every put individual). Batched writes must replay exactly
	// like sequential ones; a crash during a batch leaves every write in it
	// ambiguous (any subset may be durable), which the oracle accounts for.
	BatchPuts int

	// ScanEvery issues a full cursor-loop scan every this many ops (0 =
	// none) on stores whose sessions implement kvstore.Scanner, checked
	// exactly against the applied state — scans never persist, so the
	// schedule does not disturb the persist count. Post-recovery scans run
	// regardless: whenever the recovered session is a Scanner, the scanned
	// set must exactly equal the point-get view (no resurrected tombstones,
	// no lost survivors).
	ScanEvery int

	// Stride tests every Stride-th crash point (0 or 1 = exhaustive).
	Stride int
	// Tear additionally replays each tested point with a TearRandom plan, so
	// every persist is also exercised as a torn write.
	Tear bool

	// AllowUntriggered tolerates a crash-point run whose script completes
	// before the plan fires. With background maintenance workers the persist
	// schedule is timing-dependent, so a point counted in the clean run may
	// never be reached in a replay; the run then crashes at end-of-script
	// instead — still a legal volatile-loss check — rather than erroring.
	// Leave false for synchronous stores, where a missed point means the
	// persist count is not deterministic (a bug the sweep must catch).
	AllowUntriggered bool

	// Logf receives progress lines (pass t.Logf); nil discards them.
	Logf func(format string, args ...any)
}

// SweepResult summarizes a completed sweep.
type SweepResult struct {
	PersistEvents int64 // persist events in one clean run of the script
	Points        int   // crash points tested
	Runs          int   // total crash/recover cycles executed
	TornRuns      int   // runs that used a tearing plan
}

func (r SweepResult) String() string {
	return fmt.Sprintf("%d persist events, %d crash points tested (%d runs, %d torn)",
		r.PersistEvents, r.Points, r.Runs, r.TornRuns)
}

// CrashSweep runs the exhaustive crash-point sweep. It returns an error
// describing the first violated invariant, annotated with the crash point and
// tear mode so the failure is reproducible.
func CrashSweep(newStore NewStoreFunc, cfg SweepConfig) (SweepResult, error) {
	var res SweepResult
	if cfg.Ops <= 0 || cfg.Keys <= 0 {
		return res, fmt.Errorf("crashsweep: Ops and Keys must be positive")
	}
	if cfg.MaintainEvery > 0 && cfg.Maintenance == nil {
		return res, fmt.Errorf("crashsweep: MaintainEvery set without a Maintenance func")
	}
	script := buildScript(cfg)

	total, err := countPersists(newStore, script, cfg)
	if err != nil {
		return res, fmt.Errorf("crashsweep: clean run: %w", err)
	}
	res.PersistEvents = total
	logf(cfg.Logf, "crashsweep: script issues %d persist events", total)

	stride := cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	for i := int64(1); i <= total; i += int64(stride) {
		modes := []device.TearMode{device.TearNone}
		if cfg.Tear {
			modes = append(modes, device.TearRandom)
		}
		for _, mode := range modes {
			if err := runCrashPoint(newStore, script, cfg, i, mode); err != nil {
				return res, fmt.Errorf("crashsweep: point %d/%d (tear=%v): %w", i, total, mode, err)
			}
			res.Runs++
			if mode != device.TearNone {
				res.TornRuns++
			}
		}
		res.Points++
		if res.Points%64 == 0 {
			logf(cfg.Logf, "crashsweep: %d/%d points done", i, total)
		}
	}
	logf(cfg.Logf, "crashsweep: %s", res)
	return res, nil
}

// --- scripted workload -----------------------------------------------------

type opKind uint8

const (
	opPut opKind = iota
	opDelete
	opGet
	opFlush
	opMaint
	opScan
)

type scriptOp struct {
	kind  opKind
	key   int
	val   []byte
	phase int // opMaint only
}

func sweepKey(i int) []byte { return []byte(fmt.Sprintf("sk-%06d", i)) }

// buildScript generates the deterministic op sequence for cfg.Seed: ~60%
// puts, ~20% deletes, ~20% exact-checked gets, periodic session flushes and
// maintenance phases, and a final flush so the clean run ends fully durable.
func buildScript(cfg SweepConfig) []scriptOp {
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxVal := cfg.MaxValueLen
	if maxVal <= 0 {
		maxVal = 64
	}
	var script []scriptOp
	phase := 0
	for i := 0; i < cfg.Ops; i++ {
		if cfg.MaintainEvery > 0 && i > 0 && i%cfg.MaintainEvery == 0 {
			script = append(script, scriptOp{kind: opMaint, phase: phase})
			phase++
		}
		if cfg.FlushEvery > 0 && i > 0 && i%cfg.FlushEvery == 0 {
			script = append(script, scriptOp{kind: opFlush})
		}
		if cfg.ScanEvery > 0 && i > 0 && i%cfg.ScanEvery == 0 {
			script = append(script, scriptOp{kind: opScan})
		}
		key := rng.Intn(cfg.Keys)
		switch r := rng.Intn(10); {
		case r < 6:
			n := rng.Intn(maxVal) + 1
			if rng.Intn(32) == 0 {
				n = 0 // empty values ride along
			}
			val := make([]byte, n)
			rng.Read(val)
			script = append(script, scriptOp{kind: opPut, key: key, val: val})
		case r < 8:
			script = append(script, scriptOp{kind: opDelete, key: key})
		default:
			script = append(script, scriptOp{kind: opGet, key: key})
		}
	}
	script = append(script, scriptOp{kind: opFlush})
	return script
}

// --- durability oracle -----------------------------------------------------

type sinceVal struct {
	val string
	del bool
}

// runState tracks the three views of the key space the legality check needs:
// durable (state at the last successful un-triggered Flush), since
// (everything acknowledged per key after that Flush, in order), and applied
// (the exact state all acknowledged ops produce — what a clean run must
// serve). pending records the ambiguous ops: the op — or every write of the
// PutBatch — in flight when the fault plan triggered, whose effects may be
// partially durable whether or not the call returned an error.
type runState struct {
	durable map[int]string
	since   map[int][]sinceVal
	applied map[int]string

	pending []pendingOp
}

// pendingOp is one write whose durability is ambiguous: it was part of the
// call in flight when the fault plan triggered.
type pendingOp struct {
	key int
	v   sinceVal
}

func newRunState() *runState {
	return &runState{
		durable: make(map[int]string),
		since:   make(map[int][]sinceVal),
		applied: make(map[int]string),
	}
}

func (rs *runState) ack(key int, v sinceVal) {
	rs.since[key] = append(rs.since[key], v)
	if v.del {
		delete(rs.applied, key)
	} else {
		rs.applied[key] = v.val
	}
}

func (rs *runState) promote() {
	rs.durable = make(map[int]string, len(rs.applied))
	for k, v := range rs.applied {
		rs.durable[k] = v
	}
	rs.since = make(map[int][]sinceVal)
}

// legal reports whether the recovered (got, ok) for key is consistent with
// the crash-durability contract, and if not, a description of why.
func (rs *runState) legal(key int, got []byte, ok bool) (bool, string) {
	durVal, durOK := rs.durable[key]
	if ok {
		if durOK && string(got) == durVal {
			return true, ""
		}
		for _, c := range rs.since[key] {
			if !c.del && c.val == string(got) {
				return true, ""
			}
		}
		for _, p := range rs.pending {
			if p.key == key && !p.v.del && p.v.val == string(got) {
				return true, ""
			}
		}
		if durOK {
			return false, fmt.Sprintf("recovered value %q matches neither the flushed value (%d bytes) nor any acknowledged write since", trunc(got), len(durVal))
		}
		return false, fmt.Sprintf("recovered value %q for a key with no flushed value matches no acknowledged write", trunc(got))
	}
	if !durOK {
		return true, "" // base absent: unflushed writes may be lost
	}
	for _, c := range rs.since[key] {
		if c.del {
			return true, "" // the acknowledged delete may have persisted
		}
	}
	for _, p := range rs.pending {
		if p.key == key && p.v.del {
			return true, ""
		}
	}
	return false, fmt.Sprintf("flushed value (%d bytes) lost: key absent after recovery with no delete acknowledged since the flush", len(durVal))
}

// fullScan drives a cursor loop to completion, collecting every returned pair
// and rejecting duplicate keys (a key must never be emitted twice in one
// logical iteration over a quiesced store).
func fullScan(sc kvstore.Scanner) (map[string]string, error) {
	got := make(map[string]string)
	var cursor uint64
	for {
		kvs, next, err := sc.Scan(cursor, 64)
		if err != nil {
			return nil, fmt.Errorf("scan(cursor=%d): %w", cursor, err)
		}
		for _, kv := range kvs {
			if _, dup := got[string(kv.Key)]; dup {
				return nil, fmt.Errorf("scan returned key %q twice", kv.Key)
			}
			got[string(kv.Key)] = string(kv.Value)
		}
		if next == 0 {
			return got, nil
		}
		cursor = next
	}
}

// diffScan checks a scanned key set exactly against a want state: same keys,
// same values, nothing extra. The map keys of want are script key indices.
func diffScan(got map[string]string, want map[int]string) error {
	for k, wv := range want {
		gv, ok := got[string(sweepKey(k))]
		if !ok {
			return fmt.Errorf("live key %d missing from scan", k)
		}
		if gv != wv {
			return fmt.Errorf("scan key %d = %q want %q", k, trunc([]byte(gv)), trunc([]byte(wv)))
		}
	}
	if len(got) != len(want) {
		wantKeys := make(map[string]bool, len(want))
		for k := range want {
			wantKeys[string(sweepKey(k))] = true
		}
		for gk := range got {
			if !wantKeys[gk] {
				return fmt.Errorf("scan returned key %q which must be absent (resurrected delete or invented key)", gk)
			}
		}
	}
	return nil
}

func trunc(b []byte) []byte {
	if len(b) > 24 {
		return b[:24]
	}
	return b
}

// --- execution -------------------------------------------------------------

func deviceOf(st kvstore.Store) (*device.Device, error) {
	d, ok := st.(interface{ Device() *device.Device })
	if !ok {
		return nil, fmt.Errorf("store %T does not expose Device()", st)
	}
	return d.Device(), nil
}

// executeScript drives the script through one session, maintaining the
// oracle. With a triggering plan installed it stops at the first op during
// which the plan fired (recording it as the pending ambiguous op); op errors
// are tolerated only then. With a pure-counter plan it runs to completion,
// exact-checking every scripted get against the applied state.
func executeScript(st kvstore.Store, plan *device.FaultPlan, script []scriptOp, cfg SweepConfig) (*runState, error) {
	c := simclock.New(0)
	se := st.NewSession(c)
	rs := newRunState()
	var bw kvstore.BatchWriter
	if cfg.BatchPuts > 1 {
		bw, _ = se.(kvstore.BatchWriter)
	}
	var bkeys, bvals [][]byte
	for n := 0; n < len(script); n++ {
		op := script[n]
		if plan.Triggered() {
			return rs, nil
		}
		var err error
		switch op.kind {
		case opPut:
			if bw != nil && n+1 < len(script) && script[n+1].kind == opPut {
				// A run of consecutive puts goes through PutBatch, the path
				// the server's shard-affine SET dispatch uses. The batch must
				// replay exactly like the sequential puts; a trigger during it
				// makes every write in it ambiguous.
				end := n
				bkeys, bvals = bkeys[:0], bvals[:0]
				for ; end < len(script) && script[end].kind == opPut && end-n < cfg.BatchPuts; end++ {
					bkeys = append(bkeys, sweepKey(script[end].key))
					bvals = append(bvals, script[end].val)
				}
				err = bw.PutBatch(bkeys, bvals)
				if plan.Triggered() {
					for i := n; i < end; i++ {
						rs.pending = append(rs.pending, pendingOp{key: script[i].key, v: sinceVal{val: string(script[i].val)}})
					}
					return rs, nil
				}
				if err != nil {
					return rs, fmt.Errorf("op %d (batched put x%d): %w", n, end-n, err)
				}
				for i := n; i < end; i++ {
					rs.ack(script[i].key, sinceVal{val: string(script[i].val)})
				}
				n = end - 1
				continue
			}
			err = se.Put(sweepKey(op.key), op.val)
		case opDelete:
			err = se.Delete(sweepKey(op.key))
		case opFlush:
			err = se.Flush()
		case opMaint:
			err = cfg.Maintenance(st, c, op.phase)
		case opScan:
			sc, isScanner := se.(kvstore.Scanner)
			if !isScanner {
				continue
			}
			got, serr := fullScan(sc)
			if serr != nil {
				err = serr
				break
			}
			if plan.Triggered() {
				break // mid-scan trigger: state comparison no longer exact
			}
			if derr := diffScan(got, rs.applied); derr != nil {
				return rs, fmt.Errorf("op %d: mid-script scan: %w", n, derr)
			}
		case opGet:
			var got []byte
			var ok bool
			got, ok, err = se.Get(sweepKey(op.key))
			if err == nil && !plan.Triggered() {
				want, wantOK := rs.applied[op.key]
				if ok != wantOK || (ok && string(got) != want) {
					return rs, fmt.Errorf("op %d: pre-crash get key %d = %q,%v want %q,%v",
						n, op.key, trunc(got), ok, trunc([]byte(want)), wantOK)
				}
			}
		}
		if plan.Triggered() {
			// The op in flight when power failed: its effects are ambiguous
			// regardless of its return value.
			switch op.kind {
			case opPut:
				rs.pending = append(rs.pending, pendingOp{key: op.key, v: sinceVal{val: string(op.val)}})
			case opDelete:
				rs.pending = append(rs.pending, pendingOp{key: op.key, v: sinceVal{del: true}})
			}
			return rs, nil
		}
		if err != nil {
			return rs, fmt.Errorf("op %d (%v): %w", n, op.kind, err)
		}
		switch op.kind {
		case opPut:
			rs.ack(op.key, sinceVal{val: string(op.val)})
		case opDelete:
			rs.ack(op.key, sinceVal{del: true})
		case opFlush:
			rs.promote()
		}
	}
	return rs, nil
}

// countPersists runs the script cleanly under a pure-counter plan, verifies
// the final state exactly, and returns the persist-event total.
func countPersists(newStore NewStoreFunc, script []scriptOp, cfg SweepConfig) (int64, error) {
	st, err := newStore()
	if err != nil {
		return 0, err
	}
	defer st.Close()
	dev, err := deviceOf(st)
	if err != nil {
		return 0, err
	}
	plan := &device.FaultPlan{} // CrashAtPersist=0: count, never trigger
	dev.InstallFaultPlan(plan)
	rs, err := executeScript(st, plan, script, cfg)
	if err != nil {
		return 0, err
	}
	se := st.NewSession(simclock.New(0))
	for key := 0; key < cfg.Keys; key++ {
		got, ok, err := se.Get(sweepKey(key))
		if err != nil {
			return 0, fmt.Errorf("final get key %d: %w", key, err)
		}
		want, wantOK := rs.applied[key]
		if ok != wantOK || (ok && string(got) != want) {
			return 0, fmt.Errorf("final state: key %d = %q,%v want %q,%v",
				key, trunc(got), ok, trunc([]byte(want)), wantOK)
		}
	}
	return plan.Persists(), nil
}

// runCrashPoint replays the script on a fresh store, crashing at persist
// event `point` with the given tear mode, then recovers and checks every
// durability invariant. Every 7th point additionally exercises a second
// crash+recover cycle to check that recovery is idempotent.
func runCrashPoint(newStore NewStoreFunc, script []scriptOp, cfg SweepConfig, point int64, mode device.TearMode) error {
	st, err := newStore()
	if err != nil {
		return err
	}
	defer st.Close()
	dev, err := deviceOf(st)
	if err != nil {
		return err
	}
	plan := &device.FaultPlan{
		CrashAtPersist: point,
		Tear:           mode,
		Seed:           cfg.Seed + point*7919,
	}
	dev.InstallFaultPlan(plan)
	rs, err := executeScript(st, plan, script, cfg)
	if err != nil {
		return err
	}
	if !plan.Triggered() && !cfg.AllowUntriggered {
		return fmt.Errorf("script completed with only %d persists — persist count is not deterministic", plan.Persists())
	}

	st.Crash()
	dev.InstallFaultPlan(nil)
	if err := recoverAndCheck(st, rs, cfg); err != nil {
		return err
	}
	if point%7 == 0 {
		// A crash immediately after recovery must recover to an equally legal
		// state: nothing recovery persisted may depend on volatile leftovers.
		st.Crash()
		if err := recoverAndCheck(st, rs, cfg); err != nil {
			return fmt.Errorf("second crash/recover cycle: %w", err)
		}
	}
	return nil
}

// recoverAndCheck recovers the store and asserts the post-crash contract:
// recovery succeeds, the store's own integrity verifier passes, every key's
// state is legal per the oracle, a full scan (when the store supports one)
// agrees exactly with the point-get view, and the store accepts and flushes
// new writes.
func recoverAndCheck(st kvstore.Store, rs *runState, cfg SweepConfig) error {
	if err := st.Recover(simclock.New(0)); err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	if v, ok := st.(interface {
		VerifyIntegrity(*simclock.Clock) error
	}); ok {
		if err := v.VerifyIntegrity(simclock.New(0)); err != nil {
			return fmt.Errorf("integrity check after recovery: %w", err)
		}
	}
	se := st.NewSession(simclock.New(0))
	present := make(map[string]string)
	for key := 0; key < cfg.Keys; key++ {
		got, ok, err := se.Get(sweepKey(key))
		if err != nil {
			return fmt.Errorf("post-recovery get key %d: %w", key, err)
		}
		if legal, why := rs.legal(key, got, ok); !legal {
			return fmt.Errorf("key %d: %s", key, why)
		}
		if ok {
			present[string(sweepKey(key))] = string(got)
		}
	}
	// Scan/get parity: on a quiesced recovered store, a full scan must return
	// exactly the point-get view — a scanned key the gets call absent is a
	// resurrected tombstone; a present key the scan misses is a lost survivor.
	// Runs before the writability probe so the probe key cannot pollute it.
	if sc, ok := se.(kvstore.Scanner); ok {
		scanned, err := fullScan(sc)
		if err != nil {
			return fmt.Errorf("post-recovery scan: %w", err)
		}
		for k, v := range present {
			sv, ok := scanned[k]
			if !ok {
				return fmt.Errorf("post-recovery scan: live key %q missing", k)
			}
			if sv != v {
				return fmt.Errorf("post-recovery scan: key %q = %q, get sees %q", k, trunc([]byte(sv)), trunc([]byte(v)))
			}
		}
		for gk, sv := range scanned {
			if _, ok := present[gk]; ok {
				continue
			}
			// A scanned key outside the checked keyspace (e.g. a probe key a
			// prior recovery cycle flushed) still has to agree with Get.
			got, ok, err := se.Get([]byte(gk))
			if err != nil {
				return fmt.Errorf("post-recovery get of scanned key %q: %w", gk, err)
			}
			if !ok {
				return fmt.Errorf("post-recovery scan: key %q returned but absent per get (resurrected tombstone)", gk)
			}
			if string(got) != sv {
				return fmt.Errorf("post-recovery scan: key %q = %q, get sees %q", gk, trunc([]byte(sv)), trunc(got))
			}
		}
	}
	// Writability probe: the recovered store must function as a store.
	probeKey := sweepKey(cfg.Keys + 999983)
	probeVal := []byte("post-recovery-probe")
	if err := se.Put(probeKey, probeVal); err != nil {
		return fmt.Errorf("post-recovery put: %w", err)
	}
	got, ok, err := se.Get(probeKey)
	if err != nil || !ok || !bytes.Equal(got, probeVal) {
		return fmt.Errorf("post-recovery probe readback = %q,%v,%v", trunc(got), ok, err)
	}
	if err := se.Flush(); err != nil {
		return fmt.Errorf("post-recovery flush: %w", err)
	}
	return nil
}

// StandardMaintenance returns a MaintenanceFunc that rotates over the
// maintenance entry points the core-based stores expose — forced MemTable
// flushes, Get-Protect ABI dumps, and log garbage collection — discovered by
// interface assertion so the same script drives any store (phases a store
// does not implement are no-ops).
func StandardMaintenance() MaintenanceFunc {
	return func(st kvstore.Store, c *simclock.Clock, phase int) error {
		switch phase % 3 {
		case 0:
			if f, ok := st.(interface {
				FlushAll(*simclock.Clock) error
			}); ok {
				return f.FlushAll(c)
			}
		case 1:
			if d, ok := st.(interface {
				DumpABIs(*simclock.Clock) error
			}); ok {
				return d.DumpABIs(c)
			}
		case 2:
			if g, ok := st.(interface {
				CompactLog(*simclock.Clock, int64) (int64, error)
			}); ok {
				_, err := g.CompactLog(c, 64<<10)
				return err
			}
		}
		return nil
	}
}

func logf(f func(string, ...any), format string, args ...any) {
	if f != nil {
		f(format, args...)
	}
}
