// Package blockcache implements the in-DRAM data cache the paper grants
// NoveLSM and MatrixKV in its Section 3.7 comparison (8 GB, matching the
// DRAM budget of ChameleonDB's ABI). It is a byte-capacity-bounded LRU over
// recently read KV items: a hit replaces the Pmem search and read with one
// DRAM access, a miss fills the cache. The paper finds its impact limited
// under random access because the cache covers only a small fraction of the
// dataset — which the experiments here reproduce.
package blockcache

import (
	"container/list"

	"chameleondb/internal/device"
	"chameleondb/internal/simclock"
)

type entry struct {
	key uint64
	val []byte
}

// Cache is an LRU data cache keyed by 64-bit key hash. Not safe for
// concurrent use; the owning store serializes per stripe.
type Cache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recent
	items    map[uint64]*list.Element

	hits   int64
	misses int64
}

// New creates a cache bounded to capacity bytes of cached values. A zero or
// negative capacity disables the cache (every lookup misses, nothing is
// stored).
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

// Enabled reports whether the cache can hold anything.
func (c *Cache) Enabled() bool { return c.capacity > 0 }

// Get returns the cached value for key, charging one DRAM access for the
// probe. The returned slice is the cache's copy; callers must not modify it.
func (c *Cache) Get(clk *simclock.Clock, key uint64) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	clk.Advance(device.CostDRAMRandAccess)
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(entry).val, true
}

// Put caches a copy of val under key, evicting least-recently used items to
// stay within capacity.
func (c *Cache) Put(key uint64, val []byte) {
	bytes := int64(len(val)) + 32 // entry overhead
	if c.capacity <= 0 || bytes > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok {
		old := el.Value.(entry)
		c.used -= int64(len(old.val)) + 32
		el.Value = entry{key: key, val: append([]byte(nil), val...)}
		c.used += bytes
		c.order.MoveToFront(el)
		// A larger replacement can overshoot the budget; evict from the
		// back (the replaced entry is at the front, so it is never its own
		// victim).
		c.evictOver(c.capacity)
		return
	}
	c.evictOver(c.capacity - bytes)
	c.items[key] = c.order.PushFront(entry{key: key, val: append([]byte(nil), val...)})
	c.used += bytes
}

// evictOver drops least-recently-used items until used <= budget.
func (c *Cache) evictOver(budget int64) {
	for c.used > budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(entry)
		c.used -= int64(len(ev.val)) + 32
		delete(c.items, ev.key)
		c.order.Remove(back)
	}
}

// Invalidate drops the item under key (it was overwritten or deleted).
func (c *Cache) Invalidate(key uint64) {
	if el, ok := c.items[key]; ok {
		ev := el.Value.(entry)
		c.used -= int64(len(ev.val)) + 32
		delete(c.items, key)
		c.order.Remove(el)
	}
}

// Reset empties the cache (a crash loses it: it is DRAM).
func (c *Cache) Reset() {
	c.order.Init()
	c.items = make(map[uint64]*list.Element)
	c.used = 0
}

// UsedBytes returns the cache's DRAM footprint.
func (c *Cache) UsedBytes() int64 { return c.used }

// HitRate returns hits / lookups, or 0 when unused.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) { return c.hits, c.misses }
