package blockcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chameleondb/internal/simclock"
)

func TestHitMiss(t *testing.T) {
	c := New(1024)
	clk := simclock.New(0)
	if _, ok := c.Get(clk, 1); ok {
		t.Fatal("hit in empty cache")
	}
	c.Put(1, []byte("hello"))
	v, ok := c.Get(clk, 1)
	if !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("get = %q %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
	if clk.Now() <= 0 {
		t.Fatal("lookups charged no time")
	}
	if !c.Enabled() {
		t.Fatal("cache should report enabled")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3 * (100 + 32))
	clk := simclock.New(0)
	val := bytes.Repeat([]byte{1}, 100)
	c.Put(1, val)
	c.Put(2, val)
	c.Put(3, val)
	c.Get(clk, 1) // refresh 1: now 2 is the LRU
	c.Put(4, val) // evicts 2
	if _, ok := c.Get(clk, 2); ok {
		t.Fatal("LRU entry not evicted")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := c.Get(clk, k); !ok {
			t.Fatalf("wrong entry evicted: %d missing", k)
		}
	}
}

func TestCapacityRespected(t *testing.T) {
	c := New(500)
	val := bytes.Repeat([]byte{1}, 100)
	for i := uint64(0); i < 100; i++ {
		c.Put(i, val)
		if c.UsedBytes() > 500 {
			t.Fatalf("capacity exceeded: %d", c.UsedBytes())
		}
	}
}

func TestOversizeAndDisabled(t *testing.T) {
	c := New(100)
	c.Put(1, bytes.Repeat([]byte{1}, 200)) // larger than capacity: rejected
	clk := simclock.New(0)
	if _, ok := c.Get(clk, 1); ok {
		t.Fatal("oversize value cached")
	}
	d := New(0) // disabled
	if d.Enabled() {
		t.Fatal("zero-capacity cache reports enabled")
	}
	d.Put(1, []byte("x"))
	if _, ok := d.Get(clk, 1); ok {
		t.Fatal("disabled cache stored a value")
	}
}

func TestInvalidateAndReset(t *testing.T) {
	c := New(1000)
	clk := simclock.New(0)
	c.Put(1, []byte("a"))
	c.Put(2, []byte("b"))
	c.Invalidate(1)
	if _, ok := c.Get(clk, 1); ok {
		t.Fatal("invalidated value still cached")
	}
	c.Invalidate(42) // absent: no-op
	c.Reset()
	if c.UsedBytes() != 0 {
		t.Fatal("reset did not clear accounting")
	}
	if _, ok := c.Get(clk, 2); ok {
		t.Fatal("reset did not clear items")
	}
}

func TestPutOverwrites(t *testing.T) {
	c := New(1000)
	clk := simclock.New(0)
	c.Put(1, []byte("old"))
	c.Put(1, []byte("newer-value"))
	v, ok := c.Get(clk, 1)
	if !ok || string(v) != "newer-value" {
		t.Fatalf("overwrite lost: %q %v", v, ok)
	}
	// Accounting must track the replacement, not accumulate.
	want := int64(len("newer-value")) + 32
	if c.UsedBytes() != want {
		t.Fatalf("used = %d, want %d", c.UsedBytes(), want)
	}
}

func TestCachedValueIsACopy(t *testing.T) {
	c := New(1000)
	clk := simclock.New(0)
	src := []byte("mutable")
	c.Put(1, src)
	src[0] = 'X'
	v, _ := c.Get(clk, 1)
	if string(v) != "mutable" {
		t.Fatal("cache aliased the caller's buffer")
	}
}

// TestConcurrentEviction hammers one capacity-bounded cache from several
// goroutines through an external mutex — the way stores actually share it,
// one lock per stripe — with Put/Get/Invalidate churn sized so evictions run
// constantly. The byte accounting must never exceed capacity or go negative,
// and the final directory must reconcile to exactly zero. Run under -race
// this also proves the external-lock discipline is sufficient.
func TestConcurrentEviction(t *testing.T) {
	const (
		capacity = 8 << 10
		workers  = 8
		opsEach  = 5000
		keyspace = 256
	)
	c := New(capacity)
	var mu sync.Mutex
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + w)))
			clk := simclock.New(0)
			val := make([]byte, 512)
			for op := 0; op < opsEach; op++ {
				k := uint64(r.Intn(keyspace))
				mu.Lock()
				switch r.Intn(10) {
				case 0:
					c.Invalidate(k)
				case 1, 2:
					if v, ok := c.Get(clk, k); ok && len(v) == 0 {
						// Values in this test are never empty.
						select {
						case fail <- "hit returned empty value":
						default:
						}
					}
				default:
					c.Put(k, val[:1+r.Intn(len(val)-1)])
				}
				used := c.UsedBytes()
				mu.Unlock()
				if used < 0 || used > capacity {
					select {
					case fail <- fmt.Sprintf("used %d outside [0, %d]", used, capacity):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	// Reconcile: dropping every possible key must return the accounting to
	// exactly zero — any drift means an eviction double-counted.
	for k := uint64(0); k < keyspace; k++ {
		c.Invalidate(k)
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("accounting drift: %d bytes used after full invalidation", c.UsedBytes())
	}
}

func TestOverwriteLargerStaysWithinCapacity(t *testing.T) {
	// Regression: overwriting a key with a larger value replaced it in place
	// without evicting, pushing the accounting past capacity (found by
	// TestConcurrentEviction).
	c := New(200)
	clk := simclock.New(0)
	c.Put(1, make([]byte, 40)) // 72 bytes with overhead
	c.Put(2, make([]byte, 40)) // 144 total
	c.Put(1, make([]byte, 150))
	if c.UsedBytes() > 200 {
		t.Fatalf("used = %d exceeds capacity 200 after larger overwrite", c.UsedBytes())
	}
	if _, ok := c.Get(clk, 1); !ok {
		t.Fatal("overwritten key evicted itself")
	}
	if _, ok := c.Get(clk, 2); ok {
		t.Fatal("LRU victim survived an over-budget overwrite")
	}
}
