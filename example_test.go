package chameleondb_test

import (
	"fmt"

	"chameleondb"
)

// Example demonstrates basic store usage on the simulated Optane device.
func Example() {
	db, err := chameleondb.Open(chameleondb.DefaultOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	if err := db.Put([]byte("greeting"), []byte("hello, pmem")); err != nil {
		panic(err)
	}
	v, ok, err := db.Get([]byte("greeting"))
	if err != nil {
		panic(err)
	}
	fmt.Println(string(v), ok)
	// Output: hello, pmem true
}

// ExampleDB_Recover shows the crash/recovery cycle: flushed writes survive a
// simulated power failure.
func ExampleDB_Recover() {
	db, err := chameleondb.Open(chameleondb.DefaultOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("durable"), []byte("yes"))
	db.Flush()
	db.Crash()
	if _, _, err := db.Recover(); err != nil {
		panic(err)
	}
	_, ok, _ := db.Get([]byte("durable"))
	fmt.Println("survived:", ok)
	// Output: survived: true
}

// ExampleSession shows per-goroutine sessions and virtual-time metering.
func ExampleSession() {
	db, err := chameleondb.Open(chameleondb.DefaultOptions())
	if err != nil {
		panic(err)
	}
	defer db.Close()

	s := db.NewSession()
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	fmt.Println("charged virtual time:", s.VirtualNanos() > 0)
	// Output: charged virtual time: true
}
