// Ycsbmix: run YCSB-style mixed workloads against the public API with one
// session per worker, the way a service embedding the store would, and
// report virtual throughput and where reads were served from (MemTable /
// ABI / last level — the paper's three-probe read path).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"chameleondb"
)

const (
	keys    = 400_000
	opsEach = 50_000
	workers = 8
)

func workload(db *chameleondb.DB, name string, readPct int) {
	var wg sync.WaitGroup
	maxNs := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			for i := 0; i < opsEach; i++ {
				k := []byte(fmt.Sprintf("key:%08d", rng.Intn(keys)))
				if rng.Intn(100) < readPct {
					if _, _, err := s.Get(k); err != nil {
						log.Fatal(err)
					}
				} else {
					if err := s.Put(k, []byte("updated-payload")); err != nil {
						log.Fatal(err)
					}
				}
			}
			maxNs[w] = s.VirtualNanos()
		}(w)
	}
	wg.Wait()
	var span int64
	for _, n := range maxNs {
		if n > span {
			span = n
		}
	}
	total := float64(workers * opsEach)
	fmt.Printf("  %-22s %6.2f Mops/s virtual\n", name, total/float64(span)*1000)
}

func main() {
	db, err := chameleondb.Open(chameleondb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	fmt.Printf("loading %d keys with %d workers...\n", keys, workers)
	var wg sync.WaitGroup
	per := keys / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			for i := w * per; i < (w+1)*per; i++ {
				if err := s.Put([]byte(fmt.Sprintf("key:%08d", i)), []byte("initial-payload")); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	fmt.Println("running mixed workloads:")
	workload(db, "YCSB-A (50% reads)", 50)
	workload(db, "YCSB-B (95% reads)", 95)
	workload(db, "YCSB-C (100% reads)", 100)

	st := db.Stats()
	served := st.GetMemTable + st.GetABI + st.GetLast
	fmt.Printf("\nread path (of %d hits): memtable %.1f%%, ABI %.1f%%, last level %.1f%%\n",
		served,
		100*float64(st.GetMemTable)/float64(served),
		100*float64(st.GetABI)/float64(served),
		100*float64(st.GetLast)/float64(served))
	fmt.Printf("compactions: %d upper, %d last-level; write amp %.2f\n",
		st.UpperCompactions, st.LastCompactions, st.WriteAmplification())
}
