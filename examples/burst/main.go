// Burst: demonstrate the dynamic Get-Protect Mode (paper Section 2.4).
// A read-heavy service is hit by a put burst; compactions triggered by the
// burst would normally inflate read tail latency. With GPM enabled, the
// store detects the tail-latency spike, suspends compactions, and dumps the
// Auxiliary Bypass Index to persistent memory unmerged until the burst
// subsides.
package main

import (
	"fmt"
	"log"
	"sort"

	"chameleondb"
)

const (
	preload   = 200_000
	burstPuts = 200_000
	gets      = 100_000
)

func p99(lat []int64) int64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[(len(lat)*99)/100]
}

func run(gpm bool) {
	opts := chameleondb.DefaultOptions()
	if gpm {
		opts.GetProtect = chameleondb.GetProtectOptions{
			Enabled:          true,
			EnterThresholdNs: 2000, // the paper's Figure 16 threshold
			MaxDumps:         1,
		}
	}
	db, err := chameleondb.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	loader := db.NewSession()
	for i := 0; i < preload; i++ {
		loader.Put([]byte(fmt.Sprintf("key:%08d", i)), []byte("payload"))
	}

	// One session interleaves the burst's puts with the measured gets so a
	// single virtual clock sees both — the way a front-end thread would
	// experience its own reads slowing down while the burst is absorbed.
	s := db.NewSession()
	measure := func(n int, interleavePuts bool) []int64 {
		var lats []int64
		for i := 0; i < n; i++ {
			if interleavePuts {
				for b := 0; b < burstPuts/n; b++ {
					s.Put([]byte(fmt.Sprintf("burst:%08d-%d", i, b)), []byte("payload"))
				}
			}
			t0 := s.VirtualNanos()
			if _, ok, err := s.Get([]byte(fmt.Sprintf("key:%08d", (i*7919)%preload))); err != nil || !ok {
				log.Fatalf("read failed: %v", err)
			}
			lats = append(lats, s.VirtualNanos()-t0)
		}
		return lats
	}

	quiet := measure(gets/10, false)
	burst := measure(gets/10, true)
	after := measure(gets/10, false)

	label := "GPM off"
	if gpm {
		label = "GPM on "
	}
	fmt.Printf("%s  P99 get latency: quiet %5d ns | during burst %5d ns | after %5d ns",
		label, p99(quiet), p99(burst), p99(after))
	if gpm {
		st := db.Stats()
		fmt.Printf("   (ABI dumps: %d, engaged: %v)", st.Dumps, db.GetProtectActive())
	}
	fmt.Println()
}

func main() {
	fmt.Println("Put bursts vs read tail latency (paper Figure 16)")
	fmt.Println()
	run(false)
	run(true)
}
