// Logc: demonstrate value-log garbage collection, this implementation's
// extension beyond the paper (which leaves log reclamation out of scope).
// An update-heavy workload fills the bounded log with dead versions;
// CompactLog relocates the live entries out of the oldest segments and frees
// them back to the device, letting the workload run indefinitely.
package main

import (
	"fmt"
	"log"

	"chameleondb"
)

func main() {
	opts := chameleondb.DefaultOptions()
	// A deliberately small log so garbage collection matters quickly.
	opts.ArenaBytes = 256 << 20
	opts.LogBytes = 24 << 20
	db, err := chameleondb.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	const keyspace = 20_000
	s := db.NewSession()
	payload := make([]byte, 64)
	rounds := 0
	gcs := 0
	for round := 0; round < 40; round++ {
		for i := 0; i < keyspace; i++ {
			key := []byte(fmt.Sprintf("key:%08d", i))
			if err := s.Put(key, payload); err != nil {
				// The log is full of dead versions: reclaim half of it.
				freed, gcNanos, gcErr := db.CompactLog(opts.LogBytes / 2)
				if gcErr != nil {
					log.Fatalf("round %d: GC failed: %v (put error: %v)", round, gcErr, err)
				}
				gcs++
				fmt.Printf("round %2d: log full -> GC freed %5.1f MB in %6.2f ms virtual\n",
					round, float64(freed)/(1<<20), float64(gcNanos)/1e6)
				if err := s.Put(key, payload); err != nil {
					log.Fatalf("put after GC: %v", err)
				}
			}
		}
		rounds++
	}

	// Everything must still be intact after all that churn.
	missing := 0
	for i := 0; i < keyspace; i += 100 {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("key:%08d", i))); !ok {
			missing++
		}
	}
	st := db.Stats()
	fmt.Printf("\n%d overwrite rounds of %d keys in a %d MB log\n",
		rounds, keyspace, opts.LogBytes>>20)
	fmt.Printf("garbage collections: %d (relocated %d live entries, dropped %d dead)\n",
		st.LogGCs, st.LogGCRelocated, st.LogGCDropped)
	fmt.Printf("missing keys after churn: %d\n", missing)
}
