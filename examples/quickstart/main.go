// Quickstart: open a ChameleonDB store, write and read a few keys, and
// inspect what the engine did underneath (flushes, compactions, media
// traffic on the simulated Optane device).
package main

import (
	"fmt"
	"log"

	"chameleondb"
)

func main() {
	db, err := chameleondb.Open(chameleondb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Basic operations.
	if err := db.Put([]byte("user:1"), []byte("ada")); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:2"), []byte("grace")); err != nil {
		log.Fatal(err)
	}
	v, ok, err := db.Get([]byte("user:1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1 = %q (found=%v)\n", v, ok)

	if err := db.Delete([]byte("user:2")); err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := db.Get([]byte("user:2")); !ok {
		fmt.Println("user:2 deleted")
	}

	// Write enough to exercise MemTable flushes and compactions.
	for i := 0; i < 200_000; i++ {
		key := fmt.Sprintf("item:%08d", i)
		val := fmt.Sprintf("value-%d", i)
		if err := db.Put([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 200_000; i += 20_000 {
		key := fmt.Sprintf("item:%08d", i)
		v, ok, err := db.Get([]byte(key))
		if err != nil || !ok {
			log.Fatalf("lost %s: %v", key, err)
		}
		fmt.Printf("%s = %s\n", key, v)
	}

	st := db.Stats()
	fmt.Printf("\nengine activity:\n")
	fmt.Printf("  puts                %d\n", st.Puts)
	fmt.Printf("  memtable flushes    %d\n", st.Flushes)
	fmt.Printf("  upper compactions   %d\n", st.UpperCompactions)
	fmt.Printf("  last-level merges   %d\n", st.LastCompactions)
	fmt.Printf("  gets from memtable  %d\n", st.GetMemTable)
	fmt.Printf("  gets from ABI       %d\n", st.GetABI)
	fmt.Printf("  gets from last lvl  %d\n", st.GetLast)
	fmt.Printf("  media written       %.1f MB (write amp %.2f)\n",
		float64(st.MediaBytesWritten)/(1<<20), st.WriteAmplification())
	fmt.Printf("  DRAM footprint      %.1f MB\n", float64(st.DRAMFootprintBytes)/(1<<20))
}
