// Recovery: demonstrate ChameleonDB's crash-recovery story (paper
// Sections 2.1 and 2.3). The store is loaded, crashed, and recovered twice:
// once in normal mode — restart only replays the MemTables, because the
// multi-level structure persists incrementally — and once in
// Write-Intensive Mode, which trades that fast restart for higher put
// throughput by keeping recent updates only in DRAM and the log.
package main

import (
	"fmt"
	"log"

	"chameleondb"
)

const keys = 300_000

func run(wim bool) {
	opts := chameleondb.DefaultOptions()
	opts.WriteIntensive = wim
	db, err := chameleondb.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	s := db.NewSession()
	for i := 0; i < keys; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key:%08d", i)), []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		log.Fatal(err)
	}
	loadNs := s.VirtualNanos()

	db.Crash()
	ready, full, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}

	// Verify nothing acknowledged-durable was lost.
	missing := 0
	for i := 0; i < keys; i += 1000 {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("key:%08d", i))); !ok {
			missing++
		}
	}

	mode := "normal"
	if wim {
		mode = "write-intensive"
	}
	fmt.Printf("%-16s load: %6.2f ms virtual (%5.2f Mops/s)   restart: ready %6.2f ms, full %6.2f ms   lost: %d\n",
		mode,
		float64(loadNs)/1e6, float64(keys)/float64(loadNs)*1000,
		float64(ready)/1e6, float64(full)/1e6, missing)
}

func main() {
	fmt.Println("ChameleonDB crash recovery: normal vs Write-Intensive Mode")
	fmt.Println("(Write-Intensive puts are faster, but a crash must rebuild the ABI from the log)")
	fmt.Println()
	run(false)
	run(true)
}
